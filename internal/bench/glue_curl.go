package bench

// "cURL(DSL)" wiring for the remote-auditing reconfiguration (§10.3): the
// per-chunk hook of a download drives the *same* Fig. 4 snapshot
// architecture used for Redis and Suricata checkpointing, shipping serialized
// Progress records to the Aud instance. Same-VM versus cross-VM placement is
// the link model charged per audit exchange.

import (
	"context"
	"sync"
	"time"

	"csaw/internal/dsl"
	"csaw/internal/minicurl"
	"csaw/internal/patterns"
	"csaw/internal/runtime"
	"csaw/internal/serial"
)

// AuditedCurl downloads files while remotely auditing transfer progress.
type AuditedCurl struct {
	sys       *runtime.System
	auditLink minicurl.Link

	mu      sync.Mutex
	current minicurl.Progress
	records []minicurl.Progress
	reqBuf  []byte // snapshot scratch, reusable only after a successful round
}

// NewAuditedCurl builds the auditing architecture with the given audit-path
// link (minicurl.SameVM or minicurl.CrossVM).
func NewAuditedCurl(auditLink minicurl.Link, timeout time.Duration) (*AuditedCurl, error) {
	ac := &AuditedCurl{auditLink: auditLink}
	prog := patterns.Snapshot(patterns.SnapshotConfig{
		Timeout: timeout,
		Capture: func(dsl.HostCtx) ([]byte, error) {
			ac.mu.Lock()
			defer ac.mu.Unlock()
			// The auditor retracts Work only after Apply consumed the bytes,
			// so a completed round leaves the scratch dead and reusable;
			// failed rounds abandon it (see appendWireOp in glue_wire.go).
			b, err := serial.AppendMarshal(ac.reqBuf[:0], ac.current)
			if err != nil {
				return nil, err
			}
			ac.reqBuf = b
			return b, nil
		},
		Apply: func(_ dsl.HostCtx, b []byte) error {
			var p minicurl.Progress
			if err := serial.Unmarshal(b, &p); err != nil {
				return err
			}
			ac.mu.Lock()
			ac.records = append(ac.records, p)
			ac.mu.Unlock()
			return nil
		},
		Complain: func(dsl.HostCtx) error {
			ac.mu.Lock()
			ac.reqBuf = nil // the auditor may still hold the snapshot bytes
			ac.mu.Unlock()
			return nil
		},
	})
	sys, err := newSystem(prog)
	if err != nil {
		return nil, err
	}
	if err := sys.RunMain(context.Background()); err != nil {
		sys.Close()
		return nil, err
	}
	ac.sys = sys
	return ac, nil
}

// Download fetches a file with per-chunk remote auditing. The returned stats
// include both the modelled audit-link time and the real cost of driving the
// snapshot architecture.
func (ac *AuditedCurl) Download(ctx context.Context, srv *minicurl.Server, name string, link minicurl.Link, chunk int) (minicurl.Stats, error) {
	return minicurl.Download(srv, name, link, chunk, func(p minicurl.Progress) (time.Duration, error) {
		ac.mu.Lock()
		ac.current = p
		ac.mu.Unlock()
		if err := ac.sys.Invoke(ctx, patterns.ActInstance, patterns.SnapshotJunction); err != nil {
			ac.mu.Lock()
			ac.reqBuf = nil // round died mid-flight: buffer may still be aliased
			ac.mu.Unlock()
			return 0, err
		}
		// Charge the modelled audit-path cost: one round trip plus the
		// serialized progress record.
		return ac.auditLink.RTT + ac.auditLink.TransferTime(64), nil
	})
}

// Records returns the audit trail.
func (ac *AuditedCurl) Records() []minicurl.Progress {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return append([]minicurl.Progress(nil), ac.records...)
}

// Close stops the architecture.
func (ac *AuditedCurl) Close() { ac.sys.Close() }
