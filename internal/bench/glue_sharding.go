package bench

// "Redis(DSL)" wiring for the sharding feature: the junction host hooks that
// connect the reusable N-ary sharding architecture (patterns/sharding.go) to
// mini-Redis back-ends. Both sharding types of §5.2 are supported through
// the chooser: key-based (djb2) and feature-based by object size.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"csaw/internal/dsl"
	"csaw/internal/miniredis"
	"csaw/internal/patterns"
	"csaw/internal/runtime"
	"csaw/internal/serial"
	"csaw/internal/workload"
)

// ShardMode selects the chooser.
type ShardMode int

// Sharding modes of §5.2.
const (
	// ShardByKey hashes the key with djb2.
	ShardByKey ShardMode = iota
	// ShardBySize quantizes object sizes into the paper's classes.
	ShardBySize
)

// ShardedRedis runs N mini-Redis instances behind the C-Saw sharding
// front-end.
type ShardedRedis struct {
	sys     *runtime.System
	servers []*miniredis.Server

	mu      sync.Mutex
	pending workload.Op
	resp    wireOp
	sizes   map[string]int // front-side key→size table (§5.2)
	reqBuf  []byte         // request scratch, reusable only after a successful round
}

// NewShardedRedis builds the system with the paper's §5.2 size classes.
func NewShardedRedis(n int, mode ShardMode, timeout time.Duration) (*ShardedRedis, error) {
	return NewShardedRedisClasses(n, mode, workload.PaperSizeClasses(), timeout)
}

// NewShardedRedisClasses builds the system with explicit size classes for
// the ShardBySize chooser.
func NewShardedRedisClasses(n int, mode ShardMode, classes []workload.SizeClass, timeout time.Duration) (*ShardedRedis, error) {
	sr := &ShardedRedis{sizes: map[string]int{}}
	for i := 0; i < n; i++ {
		sr.servers = append(sr.servers, miniredis.NewServer())
	}

	var choose func(ctx dsl.HostCtx) (int, error)
	switch mode {
	case ShardByKey:
		choose = patterns.KeyHashChooser(n, func(dsl.HostCtx) (string, error) {
			sr.mu.Lock()
			defer sr.mu.Unlock()
			return sr.pending.Key, nil
		})
	case ShardBySize:
		choose = patterns.SizeClassChooser(n, classes,
			func(dsl.HostCtx) (string, int, bool, error) {
				sr.mu.Lock()
				defer sr.mu.Unlock()
				op := sr.pending
				if !op.Get {
					// Writes are classified by the value being written; the
					// front records the size for later reads.
					sr.sizes[op.Key] = len(op.Value)
					return op.Key, len(op.Value), true, nil
				}
				size, known := sr.sizes[op.Key]
				return op.Key, size, known, nil
			})
	default:
		return nil, fmt.Errorf("bench: unknown shard mode %d", mode)
	}

	prog := patterns.Sharding(patterns.ShardingConfig{
		N:       n,
		Timeout: timeout,
		Choose:  choose,
		CaptureRequest: func(dsl.HostCtx) ([]byte, error) {
			sr.mu.Lock()
			defer sr.mu.Unlock()
			// Requests are serialized through Do, and a completed round means
			// the chosen back finished reading the previous request before
			// its response came back — so the scratch is dead and reusable
			// (see appendWireOp). Failed rounds drop it below.
			b, err := appendWireOp(sr.reqBuf[:0], wireOp{Get: sr.pending.Get, Key: sr.pending.Key, Value: sr.pending.Value})
			if err != nil {
				return nil, err
			}
			sr.reqBuf = b
			return b, nil
		},
		HandleRequest: func(ctx dsl.HostCtx, req []byte) ([]byte, error) {
			var op wireOp
			if err := serial.Unmarshal(req, &op); err != nil {
				return nil, err
			}
			srv := ctx.App().(*miniredis.Server)
			if op.Get {
				v, ok, err := srv.Get(op.Key)
				if err != nil {
					return nil, err
				}
				return serial.Marshal(wireOp{Get: true, Key: op.Key, Value: v, Found: ok})
			}
			if err := srv.Set(op.Key, op.Value); err != nil {
				return nil, err
			}
			return serial.Marshal(wireOp{Key: op.Key, Found: true})
		},
		DeliverResponse: func(_ dsl.HostCtx, b []byte) error {
			var op wireOp
			if err := serial.Unmarshal(b, &op); err != nil {
				return err
			}
			sr.mu.Lock()
			sr.resp = op
			sr.mu.Unlock()
			return nil
		},
		Complain: func(dsl.HostCtx) error {
			// A timed-out round may leave a straggling back still reading the
			// request bytes: abandon the scratch rather than reuse it.
			sr.mu.Lock()
			sr.reqBuf = nil
			sr.mu.Unlock()
			return nil
		},
	})

	sys, err := newSystem(prog)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		sys.SetApp(patterns.BackInstance(i), sr.servers[i])
	}
	if err := sys.RunMain(context.Background()); err != nil {
		sys.Close()
		return nil, err
	}
	sr.sys = sys
	return sr, nil
}

// Do routes one operation through the front-end junction.
func (sr *ShardedRedis) Do(ctx context.Context, op workload.Op) (wireOp, error) {
	sr.mu.Lock()
	sr.pending = op
	sr.mu.Unlock()
	if err := sr.sys.Invoke(ctx, patterns.FrontInstance, patterns.ShardJunction); err != nil {
		// The round died mid-flight (cancellation, down endpoint): the
		// request buffer may still be aliased somewhere, so abandon it.
		sr.mu.Lock()
		sr.reqBuf = nil
		sr.mu.Unlock()
		return wireOp{}, err
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.resp, nil
}

// Get routes a read.
func (sr *ShardedRedis) Get(ctx context.Context, key string) ([]byte, bool, error) {
	r, err := sr.Do(ctx, workload.Op{Get: true, Key: key})
	return r.Value, r.Found, err
}

// Set routes a write.
func (sr *ShardedRedis) Set(ctx context.Context, key string, value []byte) error {
	_, err := sr.Do(ctx, workload.Op{Key: key, Value: value})
	return err
}

// ShardOps returns the per-shard operation counters.
func (sr *ShardedRedis) ShardOps() []uint64 {
	out := make([]uint64, len(sr.servers))
	for i, s := range sr.servers {
		out[i] = s.Ops()
	}
	return out
}

// Close stops the system and the back-ends.
func (sr *ShardedRedis) Close() {
	sr.sys.Close()
	for _, s := range sr.servers {
		s.Close()
	}
}
