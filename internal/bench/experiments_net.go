package bench

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csaw/internal/compart"
	"csaw/internal/dsl"
	"csaw/internal/formula"
	"csaw/internal/runtime"
)

// NetBatching measures the remote-update plane itself: many source
// junctions on "machine A" firing par-arm asserts at one sink junction on
// "machine B" over a real TCP bridge, with configurable one-way link
// latency injected on B's substrate (so an update pays one hop in and its
// ack one hop out — RTT = 2x the per-hop figure).
//
// Two variants run the identical workload in the same binary: the default
// pipelined path (per-pair ack windows, cumulative acks, batch frames on
// the wire, batch KV application) and the Options.DisableBatching ablation,
// which is the seed's one-round-trip-per-update path. The series plot
// acknowledged updates per second against RTT; the notes carry the p99
// statement-completion (send-to-ack) latency and the wire-level batch
// shape (batches sent, mean messages per batch).
func NetBatching(cfg Config) (Result, error) {
	cfg.fill()
	const (
		nSrc     = 16 // source junction instances on machine A
		parWidth = 96 // concurrent asserts per invocation (par arms)
	)
	// Per-trial wall-clock budget, derived from the experiment length and
	// clamped so the CI smoke run stays fast and the full run stays stable.
	trialDur := time.Duration(cfg.Ticks) * cfg.Tick / 2
	if trialDur < 200*time.Millisecond {
		trialDur = 200 * time.Millisecond
	}
	if trialDur > 1500*time.Millisecond {
		trialDur = 1500 * time.Millisecond
	}
	// Single-machine wall-clock trials of a saturated closed loop are noisy
	// (scheduler and GC luck decide which mode's queues oscillate), so each
	// point is the median of several interleaved trials; long runs take 5,
	// the CI smoke run takes 3.
	trials := 3
	if trialDur >= time.Second {
		trials = 5
	}
	// One-way hop latencies; 1ms is the headline point (a 1ms-latency link,
	// 2ms RTT).
	hops := []time.Duration{0, 500 * time.Microsecond, time.Millisecond}

	batched := Series{Name: "pipelined+batched"}
	unbatched := Series{Name: "unbatched (seed path)"}
	var notes []string

	// One discarded warmup trial: the first trial in a process runs cold
	// (heap growth, page faults, idle-pool spin-up) and would bias whichever
	// variant went first.
	if _, err := netBatchingTrial(cfg, 0, 500*time.Millisecond, nSrc, parWidth, false); err != nil {
		return Result{}, fmt.Errorf("warmup trial: %w", err)
	}

	for _, hop := range hops {
		x := float64(hop.Microseconds()) / 1000 // link latency, ms
		var bt, ut []netTrialStats
		for i := 0; i < trials; i++ {
			u, err := netBatchingTrial(cfg, hop, trialDur, nSrc, parWidth, true)
			if err != nil {
				return Result{}, fmt.Errorf("unbatched trial (hop %s): %w", hop, err)
			}
			b, err := netBatchingTrial(cfg, hop, trialDur, nSrc, parWidth, false)
			if err != nil {
				return Result{}, fmt.Errorf("batched trial (hop %s): %w", hop, err)
			}
			ut = append(ut, u)
			bt = append(bt, b)
		}
		b, u := medianTrial(bt), medianTrial(ut)
		batched.X = append(batched.X, x)
		batched.Y = append(batched.Y, b.updatesPerSec)
		unbatched.X = append(unbatched.X, x)
		unbatched.Y = append(unbatched.Y, u.updatesPerSec)
		ratio := 0.0
		if u.updatesPerSec > 0 {
			ratio = b.updatesPerSec / u.updatesPerSec
		}
		notes = append(notes, fmt.Sprintf(
			"link=%s (rtt %s): batched=%.0f upd/s (p99 ack %s, %.1f msgs/batch over %d batches) unbatched=%.0f upd/s (p99 ack %s) ratio=%.2fx (medians of %d trials)",
			hop, 2*hop, b.updatesPerSec, b.p99Ack, b.meanBatch, b.batches, u.updatesPerSec, u.p99Ack, ratio, trials))
	}

	return Result{
		ID:      "Net-batching",
		Caption: fmt.Sprintf("Remote-update throughput over TCP: pipelined/batched path vs per-update-ack seed path (%d sources x %d par arms, median of %d %s trials)", nSrc, parWidth, trials, trialDur),
		XLabel:  "one-way link latency (ms)",
		YLabel:  "acknowledged updates/sec",
		Series:  []Series{batched, unbatched},
		Notes:   notes,
	}, nil
}

// medianTrial picks the median-throughput trial, so the reported p99 and
// batch shape belong to an actually-observed run rather than a blend.
func medianTrial(ts []netTrialStats) netTrialStats {
	sorted := append([]netTrialStats(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].updatesPerSec < sorted[j].updatesPerSec })
	return sorted[len(sorted)/2]
}

// netTrialStats is one variant's measurement at one latency point.
type netTrialStats struct {
	updatesPerSec float64
	p99Ack        time.Duration
	batches       uint64
	meanBatch     float64
}

// netBatchingTrial stands up the two-machine deployment, drives it for dur,
// and tears it down. Both systems share the disableBatching setting — the
// two modes speak different ack wire formats.
func netBatchingTrial(cfg Config, hop, dur time.Duration, nSrc, parWidth int, disableBatching bool) (netTrialStats, error) {
	// Machine A: the sources. Each invocation of a "push" junction asserts
	// the sink's proposition parWidth times in parallel — parWidth
	// pipelined remote updates per invocation, each completing only at its
	// delivery acknowledgment.
	// Both machines share one program text (the Fig. 3 deployment idiom):
	// each machine starts only the instances it hosts and bridges the rest.
	// The sink's guard is never true, so arriving updates queue under the
	// local-priority rule and the trial measures the remote plane, not sink
	// scheduling.
	build := func() *dsl.Program {
		p := dsl.NewProgram()
		arms := make(dsl.Par, parWidth)
		for i := range arms {
			arms[i] = dsl.Assert{Target: dsl.J("sink", "main"), Prop: dsl.PR("U")}
		}
		p.Type("src").Junction("push", dsl.Def(nil, arms))
		p.Type("sinkT").Junction("main", dsl.Def(
			dsl.Decls(dsl.InitProp{Name: "U", Init: false}, dsl.InitProp{Name: "Go", Init: false}),
			dsl.Skip{},
		).Guarded(formula.P("Go")))
		starts := make(dsl.Par, 0, nSrc+1)
		for i := 0; i < nSrc; i++ {
			name := fmt.Sprintf("s%d", i)
			p.Instance(name, "src")
			starts = append(starts, dsl.Start{Instance: name})
		}
		p.Instance("sink", "sinkT")
		starts = append(starts, dsl.Start{Instance: "sink"})
		p.SetMain(starts)
		return p
	}
	progA, progB := build(), build()

	netA := compart.NewNetwork(cfg.Seed)
	defer netA.Close()
	netB := compart.NewNetwork(cfg.Seed + 1)
	defer netB.Close()
	// The injected latency lives on B's substrate: a delivered update pays
	// it once on injection, its ack pays it again on the way out.
	netB.SetDefaultLink(compart.LinkConfig{Latency: hop})

	tweak := func(n *compart.Network) func(*runtime.Options) {
		return func(o *runtime.Options) {
			o.Net = n
			o.AckTimeout = 10 * time.Second
			o.DisableBatching = disableBatching
			o.Metrics = true // the p99 ack latency comes from the Ack histogram
		}
	}
	sysA, err := newSystemWith(progA, tweak(netA))
	if err != nil {
		return netTrialStats{}, err
	}
	defer sysA.Close()
	sysB, err := newSystemWith(progB, tweak(netB))
	if err != nil {
		return netTrialStats{}, err
	}
	defer sysB.Close()

	lA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return netTrialStats{}, err
	}
	srvA := compart.ServeTCP(netA, lA)
	defer srvA.Close()
	lB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return netTrialStats{}, err
	}
	srvB := compart.ServeTCP(netB, lB)
	defer srvB.Close()

	ccfg := compart.ClientConfig{QueueSize: 4096, NoBatch: disableBatching}
	toB, err := compart.DialTCPConfig(srvB.Addr().String(), ccfg)
	if err != nil {
		return netTrialStats{}, err
	}
	defer toB.Close()
	toA, err := compart.DialTCPConfig(srvA.Addr().String(), ccfg)
	if err != nil {
		return netTrialStats{}, err
	}
	defer toA.Close()

	for i := 0; i < nSrc; i++ {
		if err := sysA.StartInstance(fmt.Sprintf("s%d", i), nil); err != nil {
			return netTrialStats{}, err
		}
	}
	if err := sysB.StartInstance("sink", nil); err != nil {
		return netTrialStats{}, err
	}
	compart.Bridge(netA, "sink::main", toB)
	for i := 0; i < nSrc; i++ {
		compart.Bridge(netB, fmt.Sprintf("s%d::push", i), toA)
	}

	// Drive: one invoker per source, counting acknowledged updates.
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	var acked atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < nSrc; i++ {
		name := fmt.Sprintf("s%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if err := sysA.Invoke(ctx, name, "push"); err != nil {
					return // deadline mid-flight, or a real failure: stop
				}
				acked.Add(uint64(parWidth))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Let queued frames and delayed in-flight deliveries settle before the
	// counters are read and conservation is checked.
	time.Sleep(4*hop + 100*time.Millisecond)

	st := netTrialStats{
		updatesPerSec: float64(acked.Load()) / elapsed.Seconds(),
	}
	// p99 statement-completion latency: the worst per-source-junction p99
	// (the Ack histograms are per junction and cannot be merged exactly).
	for _, js := range sysA.Metrics().Junctions {
		if js.AckLatency.Count > 0 && js.AckLatency.P99 > st.p99Ack {
			st.p99Ack = js.AckLatency.P99
		}
	}
	cs := toB.Stats()
	st.batches = cs.BatchesSent
	st.meanBatch = cs.MsgsPerBatch.Mean()
	if !netA.Stats().Conserved() || !netB.Stats().Conserved() {
		return netTrialStats{}, fmt.Errorf("transport counters not conserved: A %+v B %+v", netA.Stats(), netB.Stats())
	}
	return st, nil
}
