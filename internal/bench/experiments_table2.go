package bench

import (
	"fmt"

	"csaw/internal/loc"
)

// Table2 regenerates the paper's effort comparison: lines of code needed to
// support each architecture-level feature through the DSL (the reusable
// architecture expression plus the per-application junction wiring) versus
// writing the re-architecture directly in the host language with its own
// communication and synchronization plumbing.
func Table2(cfg Config) (Result, error) {
	root, err := loc.ModuleRoot("")
	if err != nil {
		return Result{}, err
	}
	rows, err := loc.Table2(root)
	if err != nil {
		return Result{}, err
	}
	t := Table{Header: []string{"Feature", "DSL (pattern)", "Redis glue", "DSL total", "Direct Go", "saving"}}
	for _, r := range rows {
		total := r.DSL + r.RedisGlue
		saving := fmt.Sprintf("%.1fx", float64(r.DirectGo)/float64(total))
		t.Rows = append(t.Rows, []string{
			r.Feature,
			fmt.Sprintf("%d", r.DSL),
			fmt.Sprintf("%d", r.RedisGlue),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", r.DirectGo),
			saving,
		})
	}
	return Result{
		ID:      "Table2",
		Caption: "Effort (LoC) to support software extensions: DSL vs direct implementation",
		Tables:  []Table{t},
		Notes: []string{
			"DSL patterns are reused across applications (the Suricata and cURL wiring reuse the same pattern files), amortizing the first column",
			"Direct Go re-grows per-feature communication/synchronization plumbing (direct.go), mirroring the paper's +195-line observation",
		},
	}, nil
}

// Experiment is one regenerable artefact.
type Experiment struct {
	ID  string
	Run func(Config) (Result, error)
}

// All returns every experiment of the evaluation, in the paper's order.
func All() []Experiment {
	return []Experiment{
		{"Fig23a", Fig23a},
		{"Fig23b", Fig23b},
		{"Fig23c", Fig23c},
		{"Fig24a", Fig24a},
		{"Fig24b", Fig24b},
		{"Fig24c", Fig24c},
		{"Fig25ab", Fig25ab},
		{"Fig25c", Fig25c},
		{"Fig26a", Fig26a},
		{"Fig26b", Fig26b},
		{"Fig26c", Fig26c},
		{"Table2", Table2},
		{"Suricata-sharding-overhead", SuricataShardingOverhead},
		{"Transport-recovery", TransportRecovery},
		{"Net-batching", NetBatching},
		{"Cost-validation", CostValidation},
		{"Migration", Migration},
	}
}
