package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"csaw/internal/analysis"
	"csaw/internal/cost"
	"csaw/internal/dsl"
	"csaw/internal/obsv"
	"csaw/internal/patterns"
)

// Migration validates live reconfiguration end to end: the sharding
// architecture is deployed across two TCP-bridged locations under its
// recorded placement (Fnt at the edge, all four backends at the core), driven
// for a phase of invocations, and then the placement optimizer's suggested
// moves are applied to the RUNNING system with cost.ApplyMove — each move an
// online MigrateInstance whose state transfer rides the same TCP uplinks as
// the workload. A second phase of identical drives then measures the wire
// again. The experiment gates on the optimizer's headline numbers holding on
// a live system: cross-location updates per invocation must drop from 4.0 to
// 2.0 (within ±0.2 of each), and every migration must complete (no aborts)
// with its blackout window reported from the migrate.* trace events.
func Migration(cfg Config) (Result, error) {
	cfg.fill()
	// Invocations per phase: multiple of 4 so the round-robin shard chooser
	// lands exactly evenly, clamped for the CI smoke run.
	n := cfg.Ticks
	if n < 24 {
		n = 24
	}
	if n > 96 {
		n = 96
	}
	n -= n % 4

	var sharding costEntry
	for _, e := range costEntries() {
		if e.name == "sharding" {
			sharding = e
		}
	}
	cat, _ := patterns.CatalogueEntryByName("sharding")

	model := sharding.build()
	if err := dsl.Validate(model); err != nil {
		return Result{}, err
	}
	m := cost.Build(analysis.NewContext(model, 0))
	_, moves := cost.Optimize(m, cat.CostPlacement, cat.CostPins, nil)
	if len(moves) == 0 {
		return Result{}, fmt.Errorf("optimizer suggested no moves for %s", cat.Name)
	}

	counter := newRemoteCounter()
	rec := &migrateRecorder{}
	sys, dep, closers, err := costDeployment(cfg, sharding, teeSink{counter, rec})
	if err != nil {
		return Result{}, err
	}
	defer func() {
		sys.Close()
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()

	// crossPerInvocation classifies each measured edge by the placement in
	// force during its phase and sums the location-crossing rates.
	crossPerInvocation := func(counts map[[2]string]float64, placeOf map[string]string) float64 {
		var cross float64
		for k, v := range counts {
			fromJ, okF := m.Junctions[k[0]]
			toJ, okT := m.Junctions[k[1]]
			if !okF || !okT {
				continue
			}
			if placeOf[fromJ.Info.Inst] != placeOf[toJ.Info.Inst] {
				cross += v
			}
		}
		return cross / float64(n)
	}
	placementNow := func() map[string]string {
		out := map[string]string{}
		for _, inst := range dep.Instances() {
			out[inst] = dep.LocationOf(inst)
		}
		return out
	}
	drive := func(phase string) error {
		dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		for i := 0; i < n; i++ {
			if err := sys.Invoke(dctx, sharding.rootInst, sharding.rootJn); err != nil {
				return fmt.Errorf("%s invocation %d: %w", phase, i, err)
			}
		}
		// Let trailing cross-uplink deliveries land before counters are read.
		time.Sleep(150 * time.Millisecond)
		return nil
	}

	// Phase 1: the recorded placement, as deployed.
	beforePlace := placementNow()
	if err := drive("phase 1"); err != nil {
		return Result{}, err
	}
	phase1 := counter.snapshot()
	before := crossPerInvocation(phase1, beforePlace)

	// Live reconfiguration: apply every optimizer move to the running system.
	migStart := time.Now()
	for _, mv := range moves {
		// The optimizer speaks the catalogue's location names (edge/core);
		// the deployment maps the root's location to A and the rest to B.
		rt := analysis.PlacementMove{Instance: mv.Instance, Delta: mv.Delta}
		rt.From, rt.To = benchLoc(cat.CostPlacement, sharding, mv.From), benchLoc(cat.CostPlacement, sharding, mv.To)
		if err := cost.ApplyMove(sys, rt); err != nil {
			return Result{}, fmt.Errorf("applying move %s %s->%s: %w", mv.Instance, mv.From, mv.To, err)
		}
	}
	migWall := time.Since(migStart)

	// Phase 2: same workload against the reconfigured system.
	afterPlace := placementNow()
	if err := drive("phase 2"); err != nil {
		return Result{}, err
	}
	phase2 := diffCounts(counter.snapshot(), phase1)
	after := crossPerInvocation(phase2, afterPlace)

	for _, loc := range dep.Locations() {
		if st := dep.Net(loc).Stats(); !st.Conserved() {
			return Result{}, fmt.Errorf("location %s transport counters not conserved after live migration: %+v", loc, st)
		}
	}

	// Reconstruct the per-migration timeline from the trace events.
	migs, aborts := rec.timeline()
	if aborts != 0 {
		return Result{}, fmt.Errorf("%d migration(s) aborted", aborts)
	}
	if len(migs) != len(moves) {
		return Result{}, fmt.Errorf("expected %d completed migrations, traced %d", len(moves), len(migs))
	}

	// The gates: the optimizer's predicted 4.0 -> 2.0 must hold on the wire.
	const wantBefore, wantAfter, tol = 4.0, 2.0, 0.2
	if d := before - wantBefore; d < -tol || d > tol {
		return Result{}, fmt.Errorf("pre-migration cross-location traffic %.3f updates/invocation, want %.1f±%.1f", before, wantBefore, tol)
	}
	if d := after - wantAfter; d < -tol || d > tol {
		return Result{}, fmt.Errorf("post-migration cross-location traffic %.3f updates/invocation, want %.1f±%.1f", after, wantAfter, tol)
	}

	table := Table{Header: []string{"phase", "placement", "cross-location upd/invoke"}}
	table.Rows = append(table.Rows,
		[]string{"before", renderPlacement(beforePlace), fmt.Sprintf("%.3f", before)},
		[]string{"after", renderPlacement(afterPlace), fmt.Sprintf("%.3f", after)},
	)
	migTable := Table{Header: []string{"migration", "state bytes", "junctions", "blackout", "quiesce"}}
	var notes []string
	for _, mg := range migs {
		migTable.Rows = append(migTable.Rows, []string{
			fmt.Sprintf("%s -> %s", mg.inst, mg.dest),
			fmt.Sprintf("%d", mg.bytes),
			fmt.Sprintf("%d", mg.junctions),
			mg.blackout.String(),
			mg.quiesce.String(),
		})
		notes = append(notes, fmt.Sprintf(
			"migrated %s to %s live: %d junction(s), %dB of state over TCP, blackout %s (quiesce %s)",
			mg.inst, mg.dest, mg.junctions, mg.bytes, mg.blackout, mg.quiesce))
	}
	notes = append(notes, fmt.Sprintf(
		"live reconfiguration cut measured cross-location traffic %.3f -> %.3f updates/invocation (optimizer predicted 4.0 -> 2.0); %d moves applied in %s total",
		before, after, len(moves), migWall.Round(time.Millisecond)))

	return Result{
		ID: "Migration",
		Caption: fmt.Sprintf("Online instance migration applying optimizer placement moves to a running TCP deployment (%d invocations per phase)",
			n),
		XLabel: "phase (0 = before, 1 = after)",
		YLabel: "cross-location updates per invocation",
		Series: []Series{{Name: "measured cross-location updates/invocation", X: []float64{0, 1}, Y: []float64{before, after}}},
		Tables: []Table{table, migTable},
		Notes:  notes,
	}, nil
}

// benchLoc maps a catalogue location name (edge/core) onto the two-machine
// A/B split costDeployment builds: the root's recorded location is A.
func benchLoc(ref map[string]string, e costEntry, loc string) string {
	if loc == ref[e.rootInst] {
		return "A"
	}
	return "B"
}

// diffCounts subtracts an earlier counter snapshot from a later one.
func diffCounts(later, earlier map[[2]string]float64) map[[2]string]float64 {
	out := make(map[[2]string]float64, len(later))
	for k, v := range later {
		if d := v - earlier[k]; d > 0 {
			out[k] = d
		}
	}
	return out
}

// renderPlacement renders an instance->location map compactly and
// deterministically ("Bck1:B Bck2:B ... Fnt:A").
func renderPlacement(place map[string]string) string {
	insts := make([]string, 0, len(place))
	for inst := range place {
		insts = append(insts, inst)
	}
	sort.Strings(insts)
	s := ""
	for i, inst := range insts {
		if i > 0 {
			s += " "
		}
		s += inst + ":" + place[inst]
	}
	return s
}

// teeSink fans one trace stream out to several sinks.
type teeSink []obsv.Sink

// Emit implements obsv.Sink.
func (t teeSink) Emit(e obsv.Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

// migrateRecorder retains the migrate.* lifecycle events.
type migrateRecorder struct {
	mu     sync.Mutex
	events []obsv.Event
}

// Emit implements obsv.Sink.
func (r *migrateRecorder) Emit(e obsv.Event) {
	switch e.Kind {
	case obsv.EvMigrateBegin, obsv.EvMigrateQuiesce, obsv.EvMigrateTransfer,
		obsv.EvMigrateCutover, obsv.EvMigrateResume, obsv.EvMigrateAbort:
		r.mu.Lock()
		r.events = append(r.events, e)
		r.mu.Unlock()
	}
}

// migRecord is one reconstructed migration: the instance, where it went, how
// much state crossed the wire, and the measured stall windows (blackout =
// quiesce start to resume, from the resume event's Dur; quiesce = driver and
// in-flight drain time, from the quiesce event's Dur).
type migRecord struct {
	inst, dest string
	junctions  int
	bytes      int64
	blackout   time.Duration
	quiesce    time.Duration
}

// timeline folds the retained events into per-migration records (in begin
// order) plus the abort count.
func (r *migrateRecorder) timeline() ([]migRecord, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []migRecord
	aborts := 0
	cur := -1
	for _, e := range r.events {
		switch e.Kind {
		case obsv.EvMigrateBegin:
			out = append(out, migRecord{inst: e.Junction, dest: e.Key})
			cur = len(out) - 1
		case obsv.EvMigrateAbort:
			aborts++
			if cur >= 0 {
				out = out[:cur]
				cur = -1
			}
		}
		if cur < 0 {
			continue
		}
		switch e.Kind {
		case obsv.EvMigrateQuiesce:
			out[cur].quiesce = e.Dur
		case obsv.EvMigrateTransfer:
			out[cur].junctions++
			out[cur].bytes += e.N
		case obsv.EvMigrateResume:
			out[cur].blackout = e.Dur
			cur = -1
		}
	}
	return out, aborts
}
