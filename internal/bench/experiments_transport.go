package bench

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"csaw/internal/compart"
)

// TransportRecovery is the substrate-level companion to the Fig 23a
// fail-over experiment (§7.3): instead of inferring transport behaviour
// from application throughput, it measures it directly. A local network
// bridges to a remote one over a real TCP socket through a reconnecting
// client; mid-run the remote server is killed and later restarted on the
// same address. The series show attempted versus delivered messages per
// tick — the delivery dip during the outage, the catch-up burst as the
// bounded queue drains after reconnection — and the notes report the new
// stats layer's counters (reconnects, queue drops, heartbeats, conserved
// network totals).
func TransportRecovery(cfg Config) (Result, error) {
	cfg.fill()
	const perTick = 20

	remote := compart.NewNetwork(cfg.Seed)
	defer remote.Close()
	var delivered atomic.Uint64
	remote.Register("sink", func(compart.Message) { delivered.Add(1) })

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	addr := l.Addr().String()
	srv := compart.ServeTCP(remote, l)

	local := compart.NewNetwork(cfg.Seed + 1)
	defer local.Close()
	rc := compart.DialReconnect(addr, compart.ReconnectConfig{
		QueueSize:  4 * perTick, // absorbs a fraction of the outage, then drops
		BackoffMin: cfg.Tick / 4,
		BackoffMax: 4 * cfg.Tick,
		Heartbeat:  cfg.Tick,
	})
	defer rc.Close()
	compart.BridgeReconnect(local, "sink", rc)

	downAt := cfg.CrashAt
	if downAt >= cfg.Ticks {
		downAt = cfg.Ticks / 2
	}
	upAt := downAt + cfg.Ticks/6
	if upAt <= downAt {
		upAt = downAt + 1
	}

	attempted := Series{Name: "attempted/tick"}
	got := Series{Name: "delivered/tick"}
	serverUp := true
	for tick := 0; tick < cfg.Ticks; tick++ {
		if tick == downAt {
			srv.Close()
			serverUp = false
		}
		if tick == upAt {
			l2, err := net.Listen("tcp", addr)
			if err != nil {
				return Result{}, fmt.Errorf("restart on %s: %w", addr, err)
			}
			srv = compart.ServeTCP(remote, l2)
			serverUp = true
		}
		before := delivered.Load()
		for i := 0; i < perTick; i++ {
			_ = local.Send(compart.Message{From: "src", To: "sink", Kind: compart.KindData, Key: "k"})
		}
		time.Sleep(cfg.Tick)
		x := float64(tick)
		attempted.X = append(attempted.X, x)
		attempted.Y = append(attempted.Y, perTick)
		got.X = append(got.X, x)
		got.Y = append(got.Y, float64(delivered.Load()-before))
	}
	// Let the drained queue finish arriving before reading the counters.
	time.Sleep(4 * cfg.Tick)
	if serverUp {
		srv.Close()
	}
	cs := rc.Stats()
	ls := local.LinkStats("src", "sink")
	rs := remote.Stats()

	notes := []string{
		fmt.Sprintf("server down ticks [%d,%d): delivery dips to 0, queued traffic bursts after reconnect", downAt, upAt),
		fmt.Sprintf("client: enqueued=%d sent=%d dropped=%d dials=%d connects=%d (reconnects=%d) heartbeats sent/acked=%d/%d",
			cs.Enqueued, cs.Sent, cs.Dropped, cs.Dials, cs.Connects, cs.Connects-1, cs.HeartbeatsSent, cs.HeartbeatsAcked),
		fmt.Sprintf("client send latency (enqueue→socket): mean=%s max=%s over %d frames",
			cs.SendLatency.Mean(), cs.SendLatency.Max, cs.SendLatency.Count),
		fmt.Sprintf("local link src→sink: %+v", ls),
		fmt.Sprintf("remote network: sent=%d delivered=%d dropped=%d rejected=%d lostInFlight=%d conserved=%v",
			rs.Sent, rs.Delivered, rs.Dropped, rs.Rejected, rs.LostInFlight, rs.Conserved()),
	}
	if cs.Connects < 2 {
		return Result{}, fmt.Errorf("transport never reconnected: %+v", cs)
	}
	if !rs.Conserved() || !local.Stats().Conserved() {
		return Result{}, fmt.Errorf("transport counters not conserved: remote %+v local %+v", rs, local.Stats())
	}

	return Result{
		ID:      "Transport-recovery",
		Caption: "Substrate fail-over: TCP bridge traffic across a remote server kill + restart (reconnect with backoff, bounded queue)",
		XLabel:  "tick",
		YLabel:  "messages/tick",
		Series:  []Series{attempted, got},
		Notes:   notes,
	}, nil
}
