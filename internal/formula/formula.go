// Package formula implements the propositional formula sub-language of the
// C-Saw DSL (metavariables F and G in Table 1 of the paper).
//
// Formulas guard junction scheduling, wait statements, verify statements and
// case arms. The package provides three-valued (ternary) evaluation — needed
// because a formula may refer to the state of a junction that is not running
// (paper §6, "Junction safety conditions") — and conversion to disjunctive
// normal form, which the event-structure semantics use to decompose a formula
// into sets of primitive read events (paper §8.3).
package formula

import (
	"fmt"
	"sort"
	"strings"
)

// Truth is a three-valued truth value. Unknown arises when a formula refers
// to a proposition of a junction that is not running.
type Truth int8

const (
	// False is definite falsehood.
	False Truth = iota
	// True is definite truth.
	True
	// Unknown means the value cannot be determined (remote junction down).
	Unknown
)

// String returns tt, ff or ?? following the paper's notation.
func (t Truth) String() string {
	switch t {
	case True:
		return "tt"
	case False:
		return "ff"
	default:
		return "??"
	}
}

// FromBool converts a Go bool to a definite Truth.
func FromBool(b bool) Truth {
	if b {
		return True
	}
	return False
}

// Not negates a ternary truth value (Kleene logic).
func (t Truth) Not() Truth {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// And combines two ternary truth values with Kleene conjunction.
func (t Truth) And(o Truth) Truth {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or combines two ternary truth values with Kleene disjunction.
func (t Truth) Or(o Truth) Truth {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Formula is a propositional formula over named propositions.
//
//	F ::= P | false | ¬F | F1 ∧ F2 | F1 ∨ F2 | F1 → F2
//
// A proposition may optionally be qualified with a junction name (the γ@F
// form of metavariable G), in which case it is read from that junction's
// table rather than the local one.
type Formula interface {
	// Eval evaluates the formula against an environment.
	Eval(env Env) Truth
	// String renders the formula using the paper's concrete syntax.
	String() string
	// walk visits every node in the formula tree.
	walk(func(Formula))
}

// Env resolves proposition values during evaluation. junction is empty for
// local (unqualified) propositions.
type Env interface {
	// Prop returns the ternary value of proposition name at the given
	// junction ("" = local junction).
	Prop(junction, name string) Truth
}

// EnvFunc adapts a function to the Env interface.
type EnvFunc func(junction, name string) Truth

// Prop implements Env.
func (f EnvFunc) Prop(junction, name string) Truth { return f(junction, name) }

// MapEnv is an Env backed by a map of local proposition values. Missing
// propositions evaluate to Unknown; remote propositions evaluate to Unknown.
type MapEnv map[string]bool

// Prop implements Env.
func (m MapEnv) Prop(junction, name string) Truth {
	if junction != "" {
		return Unknown
	}
	v, ok := m[name]
	if !ok {
		return Unknown
	}
	return FromBool(v)
}

// Prop is an atomic proposition, optionally scoped to a junction (the γ@P
// form). Junction=="" means the proposition is read from the local table.
type Prop struct {
	Junction string
	Name     string
}

// P constructs a local proposition.
func P(name string) Prop { return Prop{Name: name} }

// At constructs a junction-qualified proposition γ@P.
func At(junction, name string) Prop { return Prop{Junction: junction, Name: name} }

// Eval implements Formula.
func (p Prop) Eval(env Env) Truth { return env.Prop(p.Junction, p.Name) }

// String implements Formula.
func (p Prop) String() string {
	if p.Junction != "" {
		return p.Junction + "@" + p.Name
	}
	return p.Name
}

func (p Prop) walk(f func(Formula)) { f(p) }

// FalseF is the literal false formula.
type FalseF struct{}

// Eval implements Formula.
func (FalseF) Eval(Env) Truth { return False }

// String implements Formula.
func (FalseF) String() string { return "false" }

func (ff FalseF) walk(f func(Formula)) { f(ff) }

// TrueF is ¬false, provided as a convenience. The paper derives truth as
// ¬false (see the empty-set ∧ loop case, §6).
func TrueF() Formula { return NotF{FalseF{}} }

// NotF is logical negation.
type NotF struct{ F Formula }

// Not negates a formula.
func Not(f Formula) Formula { return NotF{f} }

// Eval implements Formula.
func (n NotF) Eval(env Env) Truth { return n.F.Eval(env).Not() }

// String implements Formula.
func (n NotF) String() string { return "¬" + paren(n.F) }

func (n NotF) walk(f func(Formula)) { f(n); n.F.walk(f) }

// AndF is conjunction.
type AndF struct{ L, R Formula }

// And builds a right-nested conjunction of one or more formulas.
func And(fs ...Formula) Formula { return fold(fs, func(l, r Formula) Formula { return AndF{l, r} }) }

// Eval implements Formula.
func (a AndF) Eval(env Env) Truth { return a.L.Eval(env).And(a.R.Eval(env)) }

// String implements Formula.
func (a AndF) String() string { return paren(a.L) + " ∧ " + paren(a.R) }

func (a AndF) walk(f func(Formula)) { f(a); a.L.walk(f); a.R.walk(f) }

// OrF is disjunction.
type OrF struct{ L, R Formula }

// Or builds a right-nested disjunction of one or more formulas.
func Or(fs ...Formula) Formula { return fold(fs, func(l, r Formula) Formula { return OrF{l, r} }) }

// Eval implements Formula.
func (o OrF) Eval(env Env) Truth { return o.L.Eval(env).Or(o.R.Eval(env)) }

// String implements Formula.
func (o OrF) String() string { return paren(o.L) + " ∨ " + paren(o.R) }

func (o OrF) walk(f func(Formula)) { f(o); o.L.walk(f); o.R.walk(f) }

// ImpliesF is material implication F1 → F2 ≡ ¬F1 ∨ F2.
type ImpliesF struct{ L, R Formula }

// Implies builds an implication.
func Implies(l, r Formula) Formula { return ImpliesF{l, r} }

// Eval implements Formula.
func (i ImpliesF) Eval(env Env) Truth { return i.L.Eval(env).Not().Or(i.R.Eval(env)) }

// String implements Formula.
func (i ImpliesF) String() string { return paren(i.L) + " → " + paren(i.R) }

func (i ImpliesF) walk(f func(Formula)) { f(i); i.L.walk(f); i.R.walk(f) }

func fold(fs []Formula, op func(l, r Formula) Formula) Formula {
	switch len(fs) {
	case 0:
		// For ∧ the empty fold is ¬false and for ∨ it is false (paper §6,
		// template recursion over the empty set). Callers that need that
		// distinction use the For* helpers in package dsl; here we reject.
		panic("formula: fold of zero formulas")
	case 1:
		return fs[0]
	default:
		return op(fs[0], fold(fs[1:], op))
	}
}

func paren(f Formula) string {
	switch f.(type) {
	case Prop, FalseF, NotF:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// Props returns every distinct proposition mentioned in the formula, in a
// deterministic order.
func Props(f Formula) []Prop {
	seen := map[Prop]bool{}
	var out []Prop
	f.walk(func(n Formula) {
		if p, ok := n.(Prop); ok && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Junction != out[j].Junction {
			return out[i].Junction < out[j].Junction
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Literal is a possibly-negated proposition, the atom of a DNF clause.
type Literal struct {
	Prop    Prop
	Negated bool
}

// String renders the literal in concrete syntax.
func (l Literal) String() string {
	if l.Negated {
		return "¬" + l.Prop.String()
	}
	return l.Prop.String()
}

// Clause is a conjunction of literals. An empty clause is trivially true.
type Clause []Literal

// String renders the clause.
func (c Clause) String() string {
	if len(c) == 0 {
		return "⊤"
	}
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Eval evaluates the clause under an environment with Kleene conjunction.
func (c Clause) Eval(env Env) Truth {
	t := True
	for _, l := range c {
		v := l.Prop.Eval(env)
		if l.Negated {
			v = v.Not()
		}
		t = t.And(v)
	}
	return t
}

// DNF is a disjunction of clauses. An empty DNF is false.
type DNF []Clause

// String renders the DNF.
func (d DNF) String() string {
	if len(d) == 0 {
		return "false"
	}
	parts := make([]string, len(d))
	for i, c := range d {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, " ∨ ")
}

// Eval evaluates the DNF under an environment with Kleene disjunction.
func (d DNF) Eval(env Env) Truth {
	if len(d) == 0 {
		return False
	}
	t := False
	for _, c := range d {
		t = t.Or(c.Eval(env))
	}
	return t
}

// ToDNF converts a formula to disjunctive normal form, as required by the
// event-structure semantics (paper §8.3): push negations to the leaves,
// eliminate implications, then distribute ∧ over ∨. Contradictory clauses
// (P ∧ ¬P) are dropped and duplicate literals within a clause are merged.
func ToDNF(f Formula) DNF {
	d := nnfToDNF(f, false)
	out := make(DNF, 0, len(d))
	for _, c := range d {
		if simplified, ok := simplifyClause(c); ok {
			out = append(out, simplified)
		}
	}
	return dedupeClauses(out)
}

// nnfToDNF converts a formula to DNF while pushing negation inward. neg
// tracks whether the current subformula appears under an odd number of
// negations.
func nnfToDNF(f Formula, neg bool) DNF {
	switch n := f.(type) {
	case Prop:
		return DNF{Clause{{Prop: n, Negated: neg}}}
	case FalseF:
		if neg {
			return DNF{Clause{}} // ¬false = true: one empty (trivially true) clause.
		}
		return DNF{} // false: no clauses.
	case NotF:
		return nnfToDNF(n.F, !neg)
	case AndF:
		if neg { // ¬(A ∧ B) = ¬A ∨ ¬B
			return append(nnfToDNF(n.L, true), nnfToDNF(n.R, true)...)
		}
		return distribute(nnfToDNF(n.L, false), nnfToDNF(n.R, false))
	case OrF:
		if neg { // ¬(A ∨ B) = ¬A ∧ ¬B
			return distribute(nnfToDNF(n.L, true), nnfToDNF(n.R, true))
		}
		return append(nnfToDNF(n.L, false), nnfToDNF(n.R, false)...)
	case ImpliesF:
		// A → B = ¬A ∨ B.
		return nnfToDNF(OrF{NotF{n.L}, n.R}, neg)
	default:
		panic(fmt.Sprintf("formula: unknown node %T", f))
	}
}

// distribute computes the cross product of two DNFs: (A ∨ B) ∧ (C ∨ D) =
// AC ∨ AD ∨ BC ∨ BD.
func distribute(l, r DNF) DNF {
	out := make(DNF, 0, len(l)*len(r))
	for _, cl := range l {
		for _, cr := range r {
			merged := make(Clause, 0, len(cl)+len(cr))
			merged = append(merged, cl...)
			merged = append(merged, cr...)
			out = append(out, merged)
		}
	}
	return out
}

// simplifyClause merges duplicate literals and reports false if the clause is
// contradictory (contains both P and ¬P).
func simplifyClause(c Clause) (Clause, bool) {
	polarity := map[Prop]bool{}
	var out Clause
	for _, l := range c {
		if prev, ok := polarity[l.Prop]; ok {
			if prev != l.Negated {
				return nil, false // contradiction
			}
			continue // duplicate
		}
		polarity[l.Prop] = l.Negated
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Prop.Junction != b.Prop.Junction {
			return a.Prop.Junction < b.Prop.Junction
		}
		if a.Prop.Name != b.Prop.Name {
			return a.Prop.Name < b.Prop.Name
		}
		return !a.Negated && b.Negated
	})
	if out == nil {
		out = Clause{}
	}
	return out, true
}

func dedupeClauses(d DNF) DNF {
	seen := map[string]bool{}
	out := make(DNF, 0, len(d))
	for _, c := range d {
		key := c.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}
