package formula

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTruthTables(t *testing.T) {
	cases := []struct {
		name string
		got  Truth
		want Truth
	}{
		{"not true", True.Not(), False},
		{"not false", False.Not(), True},
		{"not unknown", Unknown.Not(), Unknown},
		{"t and t", True.And(True), True},
		{"t and f", True.And(False), False},
		{"f and u", False.And(Unknown), False},
		{"t and u", True.And(Unknown), Unknown},
		{"u and u", Unknown.And(Unknown), Unknown},
		{"t or f", True.Or(False), True},
		{"f or f", False.Or(False), False},
		{"t or u", True.Or(Unknown), True},
		{"f or u", False.Or(Unknown), Unknown},
		{"u or u", Unknown.Or(Unknown), Unknown},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
}

func TestTruthString(t *testing.T) {
	if True.String() != "tt" || False.String() != "ff" || Unknown.String() != "??" {
		t.Fatalf("bad truth strings: %v %v %v", True, False, Unknown)
	}
}

func TestEvalBasic(t *testing.T) {
	env := MapEnv{"Work": true, "Retried": false}
	cases := []struct {
		f    Formula
		want Truth
	}{
		{P("Work"), True},
		{P("Retried"), False},
		{P("Missing"), Unknown},
		{Not(P("Work")), False},
		{And(P("Work"), Not(P("Retried"))), True},
		{Or(P("Retried"), P("Work")), True},
		{Implies(P("Work"), P("Retried")), False},
		{Implies(P("Retried"), P("Work")), True},
		{FalseF{}, False},
		{TrueF(), True},
		{At("other", "Work"), Unknown}, // MapEnv has no remote junctions.
	}
	for _, c := range cases {
		if got := c.f.Eval(env); got != c.want {
			t.Errorf("%s: got %v want %v", c.f, got, c.want)
		}
	}
}

func TestEnvFunc(t *testing.T) {
	env := EnvFunc(func(j, n string) Truth {
		if j == "g" && n == "Work" {
			return True
		}
		return False
	})
	if got := At("g", "Work").Eval(env); got != True {
		t.Fatalf("remote prop: got %v", got)
	}
	if got := P("Work").Eval(env); got != False {
		t.Fatalf("local prop: got %v", got)
	}
}

func TestProps(t *testing.T) {
	f := And(P("B"), Or(Not(P("A")), At("g", "A")))
	ps := Props(f)
	want := []Prop{P("A"), P("B"), At("g", "A")}
	if len(ps) != len(want) {
		t.Fatalf("got %d props %v, want %d", len(ps), ps, len(want))
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("props[%d] = %v, want %v", i, ps[i], want[i])
		}
	}
}

func TestPropsDedupe(t *testing.T) {
	f := And(P("A"), P("A"), Not(P("A")))
	if got := Props(f); len(got) != 1 {
		t.Fatalf("got %v, want single A", got)
	}
}

func TestToDNFShapes(t *testing.T) {
	cases := []struct {
		f       Formula
		clauses int
	}{
		{P("A"), 1},
		{FalseF{}, 0},
		{TrueF(), 1},
		{Not(And(P("A"), P("B"))), 2},        // ¬A ∨ ¬B
		{And(Or(P("A"), P("B")), P("C")), 2}, // AC ∨ BC
		{Implies(P("A"), P("B")), 2},         // ¬A ∨ B
		{And(P("A"), Not(P("A"))), 0},        // contradiction dropped
		{Or(P("A"), P("A")), 1},              // duplicate clause dropped
		{And(P("A"), P("A")), 1},             // duplicate literal merged
		{Not(Or(P("A"), Not(P("B")))), 1},    // ¬A ∧ B
		{Or(And(P("A"), P("B")), Not(P("C"))), 2},
	}
	for _, c := range cases {
		d := ToDNF(c.f)
		if len(d) != c.clauses {
			t.Errorf("%s: got %d clauses (%s), want %d", c.f, len(d), d, c.clauses)
		}
	}
}

func TestToDNFLiteralMerge(t *testing.T) {
	d := ToDNF(And(P("A"), P("A"), P("B")))
	if len(d) != 1 || len(d[0]) != 2 {
		t.Fatalf("got %s, want one clause of two literals", d)
	}
}

// randomFormula builds a random formula over props A..D with bounded depth.
func randomFormula(r *rand.Rand, depth int) Formula {
	names := []string{"A", "B", "C", "D"}
	if depth <= 0 || r.Intn(4) == 0 {
		if r.Intn(8) == 0 {
			return FalseF{}
		}
		return P(names[r.Intn(len(names))])
	}
	switch r.Intn(4) {
	case 0:
		return Not(randomFormula(r, depth-1))
	case 1:
		return And(randomFormula(r, depth-1), randomFormula(r, depth-1))
	case 2:
		return Or(randomFormula(r, depth-1), randomFormula(r, depth-1))
	default:
		return Implies(randomFormula(r, depth-1), randomFormula(r, depth-1))
	}
}

// TestDNFEquivalenceProperty checks, over random formulas and random total
// environments, that ToDNF preserves the formula's truth value. This is the
// key invariant the wait/guard machinery relies on.
func TestDNFEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		f := randomFormula(r, 4)
		d := ToDNF(f)
		env := MapEnv{
			"A": r.Intn(2) == 0,
			"B": r.Intn(2) == 0,
			"C": r.Intn(2) == 0,
			"D": r.Intn(2) == 0,
		}
		if got, want := d.Eval(env), f.Eval(env); got != want {
			t.Fatalf("iteration %d: formula %s env %v: DNF %s evaluates to %v, formula to %v",
				i, f, env, d, got, want)
		}
	}
}

// TestKleeneDeMorganProperty checks De Morgan duality of the ternary
// connectives with testing/quick.
func TestKleeneDeMorganProperty(t *testing.T) {
	truths := []Truth{False, True, Unknown}
	f := func(a, b uint8) bool {
		x, y := truths[a%3], truths[b%3]
		return x.And(y).Not() == x.Not().Or(y.Not()) &&
			x.Or(y).Not() == x.Not().And(y.Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestKleeneMonotonicityProperty: resolving an Unknown to a definite value
// never flips a definite result — the monotonicity that makes ternary guard
// evaluation sound.
func TestKleeneMonotonicityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		f := randomFormula(r, 4)
		partial := map[string]Truth{}
		for _, n := range []string{"A", "B", "C", "D"} {
			partial[n] = []Truth{False, True, Unknown}[r.Intn(3)]
		}
		env := EnvFunc(func(j, n string) Truth { return partial[n] })
		got := f.Eval(env)
		if got == Unknown {
			continue
		}
		// Refine every Unknown both ways; result must not change.
		for _, fill := range []bool{false, true} {
			refined := EnvFunc(func(j, n string) Truth {
				if partial[n] == Unknown {
					return FromBool(fill)
				}
				return partial[n]
			})
			if f.Eval(refined) != got {
				t.Fatalf("formula %s: definite value %v changed after refining unknowns (fill=%v)", f, got, fill)
			}
		}
	}
}

func TestStringRendering(t *testing.T) {
	f := And(Not(P("Work")), Or(At("g", "Active"), FalseF{}))
	s := f.String()
	for _, sub := range []string{"¬Work", "g@Active", "false", "∧", "∨"} {
		if !contains(s, sub) {
			t.Errorf("String() = %q missing %q", s, sub)
		}
	}
}

func TestClauseAndDNFString(t *testing.T) {
	if (Clause{}).String() != "⊤" {
		t.Errorf("empty clause should render ⊤")
	}
	if (DNF{}).String() != "false" {
		t.Errorf("empty DNF should render false")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
