package minicurl

import (
	"errors"
	"testing"
	"time"
)

func TestDownloadIntegrity(t *testing.T) {
	srv := NewServer()
	srv.AddFile("file.bin", 1<<20)
	st, err := Download(srv, "file.bin", GbE, 64<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != 1<<20 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	if st.Chunks != 16 {
		t.Fatalf("chunks = %d", st.Chunks)
	}
	want, err := Verify(srv, "file.bin")
	if err != nil {
		t.Fatal(err)
	}
	if st.Checksum != want {
		t.Fatalf("checksum %08x != %08x", st.Checksum, want)
	}
}

func TestDownloadUnknownFile(t *testing.T) {
	srv := NewServer()
	if _, err := Download(srv, "nope", GbE, 0, nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestContentDeterministicAndPositional(t *testing.T) {
	srv := NewServer()
	srv.AddFile("a", 4096)
	b1 := make([]byte, 4096)
	b2 := make([]byte, 4096)
	if err := srv.Content("a", 0, b1); err != nil {
		t.Fatal(err)
	}
	if err := srv.Content("a", 0, b2); err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("content not deterministic")
	}
	// Reading in two halves equals one read.
	h1 := make([]byte, 2048)
	h2 := make([]byte, 2048)
	if err := srv.Content("a", 0, h1); err != nil {
		t.Fatal(err)
	}
	if err := srv.Content("a", 2048, h2); err != nil {
		t.Fatal(err)
	}
	if string(append(h1, h2...)) != string(b1) {
		t.Fatal("content not position-consistent")
	}
	// Different names yield different content.
	srv.AddFile("b", 4096)
	bb := make([]byte, 4096)
	if err := srv.Content("b", 0, bb); err != nil {
		t.Fatal(err)
	}
	if string(bb) == string(b1) {
		t.Fatal("distinct files have identical content")
	}
}

func TestContentBounds(t *testing.T) {
	srv := NewServer()
	srv.AddFile("a", 100)
	if err := srv.Content("a", 90, make([]byte, 20)); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if err := srv.Content("a", -1, make([]byte, 1)); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestLinkTimeModel(t *testing.T) {
	l := Link{RTT: time.Millisecond, BytesPerSec: 1e6}
	if got := l.TransferTime(1e6); got != time.Second {
		t.Fatalf("1MB over 1MB/s = %v", got)
	}
	srv := NewServer()
	srv.AddFile("f", 1<<20)
	small, err := Download(srv, "f", GbE, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.AddFile("g", 10<<20)
	big, err := Download(srv, "g", GbE, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Bigger files take longer; roughly 10x for 10x size at fixed RTT.
	ratio := float64(big.Time) / float64(small.Time)
	if ratio < 5 || ratio > 15 {
		t.Fatalf("time ratio = %.1f, want ≈10", ratio)
	}
}

func TestHookChargesTime(t *testing.T) {
	srv := NewServer()
	srv.AddFile("f", 512<<10)
	base, err := Download(srv, "f", GbE, 64<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	const perChunk = time.Millisecond
	var progressSeen []Progress
	audited, err := Download(srv, "f", GbE, 64<<10, func(p Progress) (time.Duration, error) {
		progressSeen = append(progressSeen, p)
		return perChunk, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(progressSeen) != audited.Chunks {
		t.Fatalf("hook called %d times for %d chunks", len(progressSeen), audited.Chunks)
	}
	wantExtra := time.Duration(audited.Chunks) * perChunk
	if audited.HookTime != wantExtra {
		t.Fatalf("hook time = %v, want %v", audited.HookTime, wantExtra)
	}
	if audited.Time != base.Time+wantExtra {
		t.Fatalf("audited time %v != base %v + %v", audited.Time, base.Time, wantExtra)
	}
	// Progress is monotone and complete.
	last := progressSeen[len(progressSeen)-1]
	if last.Received != last.Total || last.Total != 512<<10 {
		t.Fatalf("final progress = %+v", last)
	}
	for i := 1; i < len(progressSeen); i++ {
		if progressSeen[i].Received <= progressSeen[i-1].Received {
			t.Fatal("progress not monotone")
		}
	}
}

func TestHookAbortsTransfer(t *testing.T) {
	srv := NewServer()
	srv.AddFile("f", 1<<20)
	boom := errors.New("audit unreachable")
	_, err := Download(srv, "f", GbE, 64<<10, func(p Progress) (time.Duration, error) {
		if p.Chunk == 3 {
			return 0, boom
		}
		return 0, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrossVMCostsMoreThanSameVM(t *testing.T) {
	srv := NewServer()
	srv.AddFile("f", 1<<20)
	run := func(audit Link) time.Duration {
		st, err := Download(srv, "f", GbE, 64<<10, func(p Progress) (time.Duration, error) {
			// The audit ships a ~64-byte progress record per chunk.
			return audit.RTT + audit.TransferTime(64), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Time
	}
	same := run(SameVM)
	cross := run(CrossVM)
	if cross <= same {
		t.Fatalf("cross-VM audit (%v) should cost more than same-VM (%v)", cross, same)
	}
}
