// Package minicurl is a from-scratch file-transfer client/server standing in
// for the cURL evaluation target (paper §2, §10.3). It performs real chunked
// data movement (content generation, copying, checksumming) while accounting
// link time through a deterministic model, so the download-time and
// audit-overhead experiments (Fig. 25a/25b/26a) are reproducible on any
// machine: the paper's 1 GbE testbed and its "same VM" / "cross VMs"
// placements become link parameter sets.
//
// The auditing architecture (use-cases ② and ③ of Fig. 1) hooks the
// transfer through a per-chunk callback: the C-Saw junction snapshots
// progress state there and ships it to the remote auditor, and whatever
// time that costs is added to the transfer's clock.
package minicurl

import (
	"errors"
	"fmt"
	"time"
)

// Link models a network path deterministically.
type Link struct {
	// RTT is the round-trip latency paid once per request plus once per
	// chunk acknowledgment window.
	RTT time.Duration
	// BytesPerSec is the link bandwidth.
	BytesPerSec float64
}

// Paper-testbed link presets. GbE matches the paper's 1 GbE research
// testbed; the VM-internal link is far faster, and the cross-VM audit link
// adds virtualization overhead.
var (
	// GbE is the download path of the experiments.
	GbE = Link{RTT: 200 * time.Microsecond, BytesPerSec: 117e6}
	// SameVM is the audit path when action and audit share a VM.
	SameVM = Link{RTT: 25 * time.Microsecond, BytesPerSec: 2e9}
	// CrossVM is the audit path between two VMs on one host.
	CrossVM = Link{RTT: 350 * time.Microsecond, BytesPerSec: 117e6}
)

// TransferTime returns the modelled time to move n bytes in one direction.
func (l Link) TransferTime(n int) time.Duration {
	if l.BytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / l.BytesPerSec * float64(time.Second))
}

// Server owns a catalogue of synthetic files. Content is generated
// deterministically from the name, so the client can verify integrity
// end-to-end without storing the bytes.
type Server struct {
	files map[string]int
}

// NewServer creates an empty catalogue.
func NewServer() *Server { return &Server{files: map[string]int{}} }

// AddFile registers a synthetic file of the given size.
func (s *Server) AddFile(name string, size int) { s.files[name] = size }

// Size looks a file up.
func (s *Server) Size(name string) (int, bool) {
	n, ok := s.files[name]
	return n, ok
}

// Content fills buf with the file's bytes at the given offset. The generator
// is cheap but position-dependent, so corruption and misordering are
// detectable by checksum.
func (s *Server) Content(name string, offset int, buf []byte) error {
	size, ok := s.files[name]
	if !ok {
		return fmt.Errorf("minicurl: no such file %q", name)
	}
	if offset < 0 || offset+len(buf) > size {
		return fmt.Errorf("minicurl: read [%d,%d) outside file of %d bytes", offset, offset+len(buf), size)
	}
	seed := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		seed = (seed ^ uint32(name[i])) * 16777619
	}
	for i := range buf {
		pos := uint32(offset + i)
		buf[i] = byte(seed ^ pos*2654435761)
	}
	return nil
}

// Progress is the state snapshot the auditing architecture captures — the
// program state logged remotely to protect its integrity (paper §2).
type Progress struct {
	URL      string
	Received int
	Total    int
	Checksum uint32
	Chunk    int
}

// ChunkHook observes each received chunk. It returns any extra time the
// hook's work should charge to the transfer clock (e.g. the audit
// round-trip) and may abort the transfer with an error.
type ChunkHook func(p Progress) (time.Duration, error)

// Stats summarizes one completed download.
type Stats struct {
	Bytes     int
	Chunks    int
	Checksum  uint32
	Time      time.Duration // modelled link time + hook-charged time
	HookTime  time.Duration // portion charged by hooks
	WallClock time.Duration // actual CPU time spent moving bytes
}

// DefaultChunk is the transfer chunk size.
const DefaultChunk = 256 << 10

// InvocationSetup models the fixed cost of one client invocation — process
// start, name resolution, connection establishment. The paper's Fig. 25a
// shows a ~20 ms floor for even 1 KB files; this constant reproduces it.
const InvocationSetup = 20 * time.Millisecond

// Download fetches a file over the link, invoking hook (may be nil) after
// every chunk. All content bytes are generated, copied and checksummed for
// real; link time is modelled.
func Download(srv *Server, name string, link Link, chunkSize int, hook ChunkHook) (Stats, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunk
	}
	size, ok := srv.Size(name)
	if !ok {
		return Stats{}, fmt.Errorf("minicurl: no such file %q", name)
	}
	start := time.Now()
	var st Stats
	st.Time = link.RTT // request/response handshake
	buf := make([]byte, chunkSize)
	sum := uint32(0)
	for off := 0; off < size; off += chunkSize {
		n := chunkSize
		if off+n > size {
			n = size - off
		}
		if err := srv.Content(name, off, buf[:n]); err != nil {
			return st, err
		}
		for _, b := range buf[:n] {
			sum = sum*31 + uint32(b)
		}
		st.Bytes += n
		st.Chunks++
		st.Time += link.TransferTime(n)
		if hook != nil {
			extra, err := hook(Progress{URL: name, Received: st.Bytes, Total: size, Checksum: sum, Chunk: st.Chunks})
			if err != nil {
				return st, fmt.Errorf("minicurl: aborted by hook at chunk %d: %w", st.Chunks, err)
			}
			st.Time += extra
			st.HookTime += extra
		}
	}
	st.Checksum = sum
	st.WallClock = time.Since(start)
	return st, nil
}

// Verify recomputes the checksum of a whole file directly (server side) to
// compare against a client transfer.
func Verify(srv *Server, name string) (uint32, error) {
	size, ok := srv.Size(name)
	if !ok {
		return 0, errors.New("minicurl: no such file")
	}
	buf := make([]byte, size)
	if err := srv.Content(name, 0, buf); err != nil {
		return 0, err
	}
	sum := uint32(0)
	for _, b := range buf {
		sum = sum*31 + uint32(b)
	}
	return sum, nil
}
