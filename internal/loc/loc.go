// Package loc counts lines of code, regenerating the methodology of the
// paper's Table 2: LoC as a proxy for programmer effort, comparing the
// DSL-expressed architectures against the hand-written direct
// re-architectures. Counting is physical source lines excluding blanks and
// comment-only lines, matching the paper's treatment of giving each DSL line
// the same weight as a host-language line.
package loc

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Count tallies the non-blank, non-comment lines of a Go source file.
func Count(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inBlock {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				line = strings.TrimSpace(line[idx+2:])
				inBlock = false
				if line == "" {
					continue
				}
			} else {
				continue
			}
		}
		if strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			idx := strings.Index(line, "*/")
			if idx < 0 {
				inBlock = true
				continue
			}
			line = strings.TrimSpace(line[idx+2:])
			if line == "" {
				continue
			}
		}
		n++
	}
	return n, sc.Err()
}

// CountAll sums Count over several files resolved against a root directory.
func CountAll(root string, rels ...string) (int, error) {
	total := 0
	for _, rel := range rels {
		n, err := Count(filepath.Join(root, rel))
		if err != nil {
			return 0, fmt.Errorf("loc: %s: %w", rel, err)
		}
		total += n
	}
	return total, nil
}

// ModuleRoot walks up from dir (or the working directory when empty) to the
// directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	if dir == "" {
		var err error
		dir, err = os.Getwd()
		if err != nil {
			return "", err
		}
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loc: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Row is one feature's effort comparison.
type Row struct {
	Feature   string
	DSL       int // the reusable architecture expression (patterns/...)
	RedisGlue int // lines wiring the pattern to mini-Redis
	DirectGo  int // the hand-written re-architecture (direct/...)
}

// FeatureFiles maps the Table-2 features to their source files, relative to
// the module root.
type FeatureFiles struct {
	Feature string
	DSL     []string
	Glue    []string
	Direct  []string
}

// DefaultFeatures is this repository's Table-2 inventory.
func DefaultFeatures() []FeatureFiles {
	return []FeatureFiles{
		{
			Feature: "Checkpointing",
			DSL:     []string{"internal/patterns/snapshot.go"},
			Glue:    []string{"internal/bench/glue_checkpoint.go"},
			Direct:  []string{"internal/direct/direct.go", "internal/direct/feature_checkpoint.go"},
		},
		{
			Feature: "Sharding",
			DSL:     []string{"internal/patterns/sharding.go", "internal/patterns/choosers.go"},
			Glue:    []string{"internal/bench/glue_sharding.go", "internal/bench/glue_wire.go"},
			Direct:  []string{"internal/direct/transport.go", "internal/direct/feature_sharding.go"},
		},
		{
			Feature: "Caching",
			DSL:     []string{"internal/patterns/caching.go"},
			Glue:    []string{"internal/bench/glue_caching.go", "internal/bench/glue_wire.go"},
			Direct:  []string{"internal/direct/transport.go", "internal/direct/feature_caching.go"},
		},
	}
}

// Table2 computes the effort rows from the live source tree.
func Table2(root string) ([]Row, error) {
	var out []Row
	for _, ff := range DefaultFeatures() {
		dsl, err := CountAll(root, ff.DSL...)
		if err != nil {
			return nil, err
		}
		glue, err := CountAll(root, ff.Glue...)
		if err != nil {
			return nil, err
		}
		direct, err := CountAll(root, ff.Direct...)
		if err != nil {
			return nil, err
		}
		out = append(out, Row{Feature: ff.Feature, DSL: dsl, RedisGlue: glue, DirectGo: direct})
	}
	return out, nil
}
