package loc

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCountSkipsBlanksAndComments(t *testing.T) {
	src := `package x

// a comment
/* block
   comment */
func F() int { // trailing comments count the line
	return 1
}
/* one-liner */ var y = 2
`
	path := writeTemp(t, src)
	n, err := Count(path)
	if err != nil {
		t.Fatal(err)
	}
	// package, func, return, }, var line (after block comment) = 5
	if n != 5 {
		t.Fatalf("count = %d, want 5", n)
	}
}

func TestCountMissingFile(t *testing.T) {
	if _, err := Count("/nonexistent/file.go"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestModuleRoot(t *testing.T) {
	root, err := ModuleRoot("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("root %s has no go.mod", root)
	}
}

func TestTable2AgainstLiveTree(t *testing.T) {
	root, err := ModuleRoot("")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table2(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DSL <= 0 || r.RedisGlue <= 0 || r.DirectGo <= 0 {
			t.Fatalf("%s: zero counts %+v", r.Feature, r)
		}
		// The paper's headline: direct re-architecture costs far more than
		// using the DSL. The pattern+glue total must beat direct Go.
		if r.DSL+r.RedisGlue >= r.DirectGo {
			t.Errorf("%s: DSL total %d not smaller than direct %d", r.Feature, r.DSL+r.RedisGlue, r.DirectGo)
		}
	}
}
