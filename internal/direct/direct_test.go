package direct

import (
	"fmt"
	"testing"
	"time"

	"csaw/internal/miniredis"
	"csaw/internal/workload"
)

const tmo = 500 * time.Millisecond

func TestCheckpointerRoundTrip(t *testing.T) {
	primary := miniredis.NewServer()
	defer primary.Close()
	c := NewCheckpointer(primary, tmo)
	defer c.Close()

	for i := 0; i < 50; i++ {
		if err := primary.Set(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if c.Snapshots() != 1 {
		t.Fatalf("snapshots = %d", c.Snapshots())
	}
	// Simulate a crash: recover into a fresh server.
	replacement := miniredis.NewServer()
	defer replacement.Close()
	if err := c.Recover(replacement); err != nil {
		t.Fatal(err)
	}
	if r := replacement.Do(miniredis.Command{Name: miniredis.CmdDBSize}); r.Int != 50 {
		t.Fatalf("recovered dbsize = %d", r.Int)
	}
}

func TestCheckpointerNoSnapshot(t *testing.T) {
	primary := miniredis.NewServer()
	defer primary.Close()
	c := NewCheckpointer(primary, tmo)
	defer c.Close()
	if err := c.Recover(miniredis.NewServer()); err == nil {
		t.Fatal("recovery without checkpoint accepted")
	}
}

func TestShardedRedisRouting(t *testing.T) {
	s := NewShardedRedis(4, tmo)
	defer s.Close()

	const n = 100
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key:%06d", i)
		if err := s.Set(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key:%06d", i)
		v, ok, err := s.Get(key)
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("get %s: %q %v %v", key, v, ok, err)
		}
	}
	hits := s.Hits()
	var total uint64
	for i, h := range hits {
		total += h
		// Every key must have landed on its hash-designated shard.
		if h == 0 {
			t.Errorf("shard %d never used", i)
		}
	}
	if total != 2*n {
		t.Fatalf("total routed = %d", total)
	}
	// Routing is hash-stable.
	key := "key:000042"
	want := int(workload.Djb2(key)) % 4
	if got := s.shardFor(key, 0, false); got != want {
		t.Fatalf("shardFor = %d, want %d", got, want)
	}
}

func TestShardedRedisCrashedShardFails(t *testing.T) {
	s := NewShardedRedis(2, 100*time.Millisecond)
	defer s.Close()
	if err := s.Set("a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Crash both shards: all requests must fail with a timely error.
	s.CrashShard(0)
	s.CrashShard(1)
	start := time.Now()
	if _, _, err := s.Get("a"); err == nil {
		t.Fatal("crashed shard served request")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("failure detection took %v", d)
	}
}

func TestCachedRedis(t *testing.T) {
	c := NewCachedRedis(tmo)
	defer c.Close()
	if err := c.Set("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// First read misses, second hits.
	if v, ok, err := c.Get("k"); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get1: %q %v %v", v, ok, err)
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get2: %q %v %v", v, ok, err)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	// Writes invalidate.
	if err := c.Set("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Get("k"); string(v) != "v2" {
		t.Fatalf("stale cache after write: %q", v)
	}
}

func TestEndpointDownFailsFast(t *testing.T) {
	e := newEndpoint("x", 1)
	e.setUp(false)
	if err := e.send(message{kind: msgPing}, 50*time.Millisecond); err == nil {
		t.Fatal("send to down endpoint accepted")
	}
	r := e.call(message{kind: msgPing}, 50*time.Millisecond)
	if r.err == nil {
		t.Fatal("call to down endpoint succeeded")
	}
}

func BenchmarkDirectShardedGet(b *testing.B) {
	s := NewShardedRedis(4, tmo)
	defer s.Close()
	_ = s.Set("key:000001", make([]byte, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = s.Get("key:000001")
	}
}
