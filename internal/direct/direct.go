// Package direct contains hand-written re-architectures of the mini-Redis
// substrate WITHOUT the C-Saw DSL — the control experiment of the paper's
// Table 2 ("Redis(C) is the LoC needed to rearchitecture directly in C.
// Redis(C) was developed without knowledge of the DSL"). Each feature
// (checkpointing, sharding, caching) carries its own ad-hoc management of
// communication, synchronization, failure detection and retry between
// instances — the ~195 lines of plumbing the paper says every direct
// implementation re-grows — so the LoC comparison and the performance
// baselines are honest.
package direct

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"csaw/internal/miniredis"
)

// ErrNoBackend is returned when an operation cannot reach any instance.
var ErrNoBackend = errors.New("direct: no reachable backend")

// ---------------------------------------------------------------------------
// Hand-rolled inter-instance plumbing (the paper's "internal management
// system for communication and synchronization between different instances
// of Redis, which adds 195 lines to each feature").
// ---------------------------------------------------------------------------

// message is one unit of work shipped between instances.
type message struct {
	kind    int
	key     string
	value   []byte
	resp    chan reply
	attempt int
}

const (
	msgGet = iota
	msgSet
	msgSnapshot
	msgRestore
	msgPing
)

type reply struct {
	value []byte
	found bool
	err   error
}

// endpoint is a mailbox with explicit liveness and timeout handling.
type endpoint struct {
	mu     sync.Mutex
	name   string
	inbox  chan message
	up     bool
	closed bool
	wg     sync.WaitGroup
}

func newEndpoint(name string, depth int) *endpoint {
	return &endpoint{name: name, inbox: make(chan message, depth), up: true}
}

func (e *endpoint) setUp(up bool) {
	e.mu.Lock()
	e.up = up
	e.mu.Unlock()
}

func (e *endpoint) isUp() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.up && !e.closed
}

// send delivers with timeout and explicit failure when the peer is down —
// replicating what assert/otherwise gives the DSL for free.
func (e *endpoint) send(m message, timeout time.Duration) error {
	if !e.isUp() {
		return fmt.Errorf("direct: endpoint %s down", e.name)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case e.inbox <- m:
		return nil
	case <-timer.C:
		return fmt.Errorf("direct: send to %s timed out", e.name)
	}
}

// call performs a request/response round with timeout and one retry —
// hand-rolled equivalents of the DSL's Work/Retried handshake.
func (e *endpoint) call(m message, timeout time.Duration) reply {
	for attempt := 0; attempt < 2; attempt++ {
		m.resp = make(chan reply, 1)
		m.attempt = attempt
		if err := e.send(m, timeout); err != nil {
			continue
		}
		timer := time.NewTimer(timeout)
		select {
		case r := <-m.resp:
			timer.Stop()
			return r
		case <-timer.C:
		}
	}
	return reply{err: fmt.Errorf("direct: call to %s failed after retries", e.name)}
}

func (e *endpoint) close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.inbox)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// worker runs a Redis instance behind an endpoint.
func (e *endpoint) serve(srv *miniredis.Server) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for m := range e.inbox {
			if !e.isUp() {
				// Crashed: drop on the floor like a dead process would.
				continue
			}
			var r reply
			switch m.kind {
			case msgGet:
				v, ok, err := srv.Get(m.key)
				r = reply{value: v, found: ok, err: err}
			case msgSet:
				r = reply{err: srv.Set(m.key, m.value)}
			case msgSnapshot:
				img, err := srv.Snapshot()
				r = reply{value: img, err: err}
			case msgRestore:
				r = reply{err: srv.Restore(m.value)}
			case msgPing:
				r = reply{found: true}
			}
			if m.resp != nil {
				m.resp <- r
			}
		}
	}()
}
