package direct

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ---------------------------------------------------------------------------
// Hand-rolled socket transport. The paper's direct re-architectures ran
// against separate Redis processes, so the control implementation must pay
// for real inter-instance communication: connection management, framing,
// request/response correlation and timeout handling — everything the
// DSL-based systems inherit from the libcompart-equivalent runtime.
// ---------------------------------------------------------------------------

// frame layout: 8-byte correlation id, 1-byte kind, then encodeShardOp body.
func writeDirectFrame(w io.Writer, id uint64, kind byte, body []byte) error {
	var hdr [13]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(9+len(body)))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func readDirectFrame(r io.Reader) (id uint64, kind byte, body []byte, err error) {
	var lenb [4]byte
	if _, err = io.ReadFull(r, lenb[:]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n < 9 || n > 32<<20 {
		err = fmt.Errorf("direct: bad frame length %d", n)
		return
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(r, buf); err != nil {
		return
	}
	id = binary.BigEndian.Uint64(buf[0:8])
	kind = buf[8]
	body = buf[9:]
	return
}

// wireServer exposes a request handler over a TCP listener.
type wireServer struct {
	l      net.Listener
	handle func(kind byte, body []byte) []byte
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

func newWireServer(handle func(kind byte, body []byte) []byte) (*wireServer, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ws := &wireServer{l: l, handle: handle, conns: map[net.Conn]bool{}}
	ws.wg.Add(1)
	go ws.accept()
	return ws, nil
}

func (ws *wireServer) addr() string { return ws.l.Addr().String() }

func (ws *wireServer) accept() {
	defer ws.wg.Done()
	for {
		conn, err := ws.l.Accept()
		if err != nil {
			return
		}
		ws.mu.Lock()
		if ws.closed {
			ws.mu.Unlock()
			_ = conn.Close()
			return
		}
		ws.conns[conn] = true
		ws.mu.Unlock()
		ws.wg.Add(1)
		go ws.serveConn(conn)
	}
}

func (ws *wireServer) serveConn(conn net.Conn) {
	defer ws.wg.Done()
	defer func() {
		ws.mu.Lock()
		delete(ws.conns, conn)
		ws.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		id, kind, body, err := readDirectFrame(r)
		if err != nil {
			return
		}
		resp := ws.handle(kind, body)
		if err := writeDirectFrame(w, id, kind, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (ws *wireServer) close() {
	ws.mu.Lock()
	ws.closed = true
	conns := make([]net.Conn, 0, len(ws.conns))
	for c := range ws.conns {
		conns = append(conns, c)
	}
	ws.mu.Unlock()
	_ = ws.l.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	ws.wg.Wait()
}

// wireClient correlates concurrent requests over one connection.
type wireClient struct {
	mu      sync.Mutex
	conn    net.Conn
	w       *bufio.Writer
	nextID  uint64
	pending map[uint64]chan []byte
	readErr error
	done    chan struct{}
}

func dialWire(addr string, timeout time.Duration) (*wireClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	wc := &wireClient{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		pending: map[uint64]chan []byte{},
		done:    make(chan struct{}),
	}
	go wc.readLoop()
	return wc, nil
}

func (wc *wireClient) readLoop() {
	r := bufio.NewReader(wc.conn)
	for {
		id, _, body, err := readDirectFrame(r)
		if err != nil {
			wc.mu.Lock()
			wc.readErr = err
			for _, ch := range wc.pending {
				close(ch)
			}
			wc.pending = map[uint64]chan []byte{}
			wc.mu.Unlock()
			close(wc.done)
			return
		}
		wc.mu.Lock()
		ch, ok := wc.pending[id]
		delete(wc.pending, id)
		wc.mu.Unlock()
		if ok {
			ch <- body
		}
	}
}

// call performs one correlated request with a deadline.
func (wc *wireClient) call(kind byte, body []byte, timeout time.Duration) ([]byte, error) {
	wc.mu.Lock()
	if wc.readErr != nil {
		wc.mu.Unlock()
		return nil, wc.readErr
	}
	wc.nextID++
	id := wc.nextID
	ch := make(chan []byte, 1)
	wc.pending[id] = ch
	err := writeDirectFrame(wc.w, id, kind, body)
	if err == nil {
		err = wc.w.Flush()
	}
	wc.mu.Unlock()
	if err != nil {
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("direct: connection lost")
		}
		return resp, nil
	case <-timer.C:
		wc.mu.Lock()
		delete(wc.pending, id)
		wc.mu.Unlock()
		return nil, fmt.Errorf("direct: call timed out after %s", timeout)
	case <-wc.done:
		return nil, fmt.Errorf("direct: connection closed")
	}
}

func (wc *wireClient) close() { _ = wc.conn.Close() }
