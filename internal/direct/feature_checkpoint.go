package direct

import (
	"fmt"
	"sync"
	"time"

	"csaw/internal/miniredis"
)

// ---------------------------------------------------------------------------
// Feature 1: checkpointing — hand-rolled equivalent of the DSL's remote
// snapshot architecture.
// ---------------------------------------------------------------------------

// Checkpointer periodically snapshots a Redis instance to an auditor
// endpoint, with manual liveness tracking, retry and recovery support.
type Checkpointer struct {
	mu        sync.Mutex
	primary   *endpoint
	auditor   *endpoint
	auditSrv  *auditStore
	timeout   time.Duration
	lastErr   error
	snapCount int
}

// auditStore is the auditor-side state: the remotely-logged snapshots.
type auditStore struct {
	mu    sync.Mutex
	snaps [][]byte
}

func (a *auditStore) add(img []byte) {
	a.mu.Lock()
	a.snaps = append(a.snaps, append([]byte(nil), img...))
	a.mu.Unlock()
}

func (a *auditStore) last() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.snaps) == 0 {
		return nil
	}
	return a.snaps[len(a.snaps)-1]
}

// NewCheckpointer wires a primary Redis to an auditor.
func NewCheckpointer(primary *miniredis.Server, timeout time.Duration) *Checkpointer {
	c := &Checkpointer{
		primary:  newEndpoint("primary", 64),
		auditor:  newEndpoint("auditor", 64),
		auditSrv: &auditStore{},
		timeout:  timeout,
	}
	c.primary.serve(primary)
	// The auditor worker stores whatever snapshots arrive.
	c.auditor.wg.Add(1)
	go func() {
		defer c.auditor.wg.Done()
		for m := range c.auditor.inbox {
			if m.kind == msgSnapshot {
				c.auditSrv.add(m.value)
				if m.resp != nil {
					m.resp <- reply{found: true}
				}
			}
		}
	}()
	return c
}

// Checkpoint captures a snapshot from the primary and ships it to the
// auditor, retrying once on failure.
func (c *Checkpointer) Checkpoint() error {
	r := c.primary.call(message{kind: msgSnapshot}, c.timeout)
	if r.err != nil {
		c.noteErr(r.err)
		return r.err
	}
	ship := c.auditor.call(message{kind: msgSnapshot, value: r.value}, c.timeout)
	if ship.err != nil {
		c.noteErr(ship.err)
		return ship.err
	}
	c.mu.Lock()
	c.snapCount++
	c.mu.Unlock()
	return nil
}

// Recover restores the latest audited snapshot into a replacement server.
func (c *Checkpointer) Recover(replacement *miniredis.Server) error {
	img := c.auditSrv.last()
	if img == nil {
		return fmt.Errorf("direct: no checkpoint to recover from")
	}
	return replacement.Restore(img)
}

// Snapshots returns how many checkpoints completed.
func (c *Checkpointer) Snapshots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapCount
}

func (c *Checkpointer) noteErr(err error) {
	c.mu.Lock()
	c.lastErr = err
	c.mu.Unlock()
}

// LastErr returns the most recent failure.
func (c *Checkpointer) LastErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// Close shuts both endpoints down.
func (c *Checkpointer) Close() {
	c.primary.close()
	c.auditor.close()
}
