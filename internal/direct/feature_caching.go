package direct

import (
	"fmt"
	"sync"
	"time"

	"csaw/internal/miniredis"
)

// ---------------------------------------------------------------------------
// Feature 3: caching — hand-rolled memoizing front-end at functional parity
// with the DSL version: request classification (cacheable or not), cache
// look-up, backend conversation over the wire format with timeout/retry,
// cache update, write-through invalidation and hit/miss accounting. The DSL
// architecture expresses the coordination once in Fig. 7; here the control
// flow, failure handling and state transitions are interleaved by hand.
// ---------------------------------------------------------------------------

// CacheClassifier decides whether a request may be served from cache (the
// ⌊CheckCacheable⌉ equivalent).
type CacheClassifier func(get bool, key string) bool

// CachedRedis fronts one Redis instance — run as a separate socket-served
// process — with an in-process cache, managing the backend conversation
// manually.
type CachedRedis struct {
	backendSrv *wireServer
	client     *wireClient
	server     *miniredis.Server
	timeout    time.Duration
	classify   CacheClassifier
	health     backendHealth

	mu     sync.Mutex
	cache  map[string][]byte
	hits   uint64
	misses uint64
	fills  uint64
	evicts uint64
}

// NewCachedRedis builds the caching front-end over a fresh instance with
// the default classifier (reads are cacheable).
func NewCachedRedis(timeout time.Duration) *CachedRedis {
	return NewCachedRedisWith(timeout, func(get bool, key string) bool { return get })
}

// NewCachedRedisWith builds the front-end with a custom classifier.
func NewCachedRedisWith(timeout time.Duration, classify CacheClassifier) *CachedRedis {
	srv := miniredis.NewServer()
	ws, err := newWireServer(shardHandler(srv))
	if err != nil {
		panic(fmt.Sprintf("direct: listen: %v", err))
	}
	wc, err := dialWire(ws.addr(), timeout)
	if err != nil {
		panic(fmt.Sprintf("direct: dial: %v", err))
	}
	return &CachedRedis{
		backendSrv: ws,
		client:     wc,
		server:     srv,
		timeout:    timeout,
		classify:   classify,
		cache:      map[string][]byte{},
	}
}

// callBackend ships one request over the wire with health accounting — the
// manual equivalent of write/assert/wait/otherwise.
func (c *CachedRedis) callBackend(get bool, key string, value []byte) reply {
	resp, err := c.client.call(wireOpKind, encodeShardOp(get, key, value), c.timeout)
	if err != nil {
		c.health.noteFailure(err)
		return reply{err: err}
	}
	c.health.noteSuccess()
	if len(resp) == 0 || resp[0] == 0 {
		return reply{found: false}
	}
	return reply{found: true, value: resp[1:]}
}

// Get classifies, consults the cache, falls through to the backend on a
// miss, and fills the cache with the result.
func (c *CachedRedis) Get(key string) ([]byte, bool, error) {
	cacheable := c.classify(true, key)
	if cacheable {
		c.mu.Lock()
		if v, ok := c.cache[key]; ok {
			c.hits++
			c.mu.Unlock()
			return v, true, nil
		}
		c.misses++
		c.mu.Unlock()
	}
	r := c.callBackend(true, key, nil)
	if r.err != nil {
		return nil, false, r.err
	}
	if cacheable && r.found {
		c.mu.Lock()
		c.cache[key] = r.value
		c.fills++
		c.mu.Unlock()
	}
	return r.value, r.found, r.err
}

// Set writes through and invalidates the memoized entry.
func (c *CachedRedis) Set(key string, value []byte) error {
	r := c.callBackend(false, key, value)
	if r.err == nil {
		c.mu.Lock()
		if _, ok := c.cache[key]; ok {
			delete(c.cache, key)
			c.evicts++
		}
		c.mu.Unlock()
	}
	return r.err
}

// Stats returns cache hit/miss counts.
func (c *CachedRedis) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// FillEvictStats returns fill/eviction counts.
func (c *CachedRedis) FillEvictStats() (fills, evicts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fills, c.evicts
}

// BackendSuspected reports the health monitor's view of the Fun instance.
func (c *CachedRedis) BackendSuspected() bool { return c.health.isSuspected() }

// Close tears the front-end down.
func (c *CachedRedis) Close() {
	c.client.close()
	c.backendSrv.close()
	c.server.Close()
}
