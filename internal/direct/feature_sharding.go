package direct

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"csaw/internal/miniredis"
	"csaw/internal/workload"
)

// ---------------------------------------------------------------------------
// Feature 2: sharding — hand-rolled N-way front-end, at functional parity
// with the DSL version: wire-format serialization between front and back
// instances, both sharding types of §5.2 (key hash and object-size classes),
// per-backend health monitoring with failure detection, and routing
// statistics. The DSL architecture gets all of this from the pattern plus a
// chooser closure; here it is re-implemented by hand.
// ---------------------------------------------------------------------------

// ShardMode selects the routing policy.
type ShardMode int

// Sharding modes of §5.2.
const (
	// ShardByKey hashes the key with djb2.
	ShardByKey ShardMode = iota
	// ShardBySize quantizes object sizes into the paper's classes.
	ShardBySize
)

// encodeShardOp serializes a request the way a cross-process deployment
// must (the DSL version gets this from save/write).
func encodeShardOp(get bool, key string, value []byte) []byte {
	buf := make([]byte, 0, 1+2+len(key)+4+len(value))
	if get {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(value)))
	buf = append(buf, value...)
	return buf
}

// decodeShardOp parses a request frame.
func decodeShardOp(buf []byte) (get bool, key string, value []byte, err error) {
	if len(buf) < 3 {
		return false, "", nil, fmt.Errorf("direct: short shard frame")
	}
	get = buf[0] == 1
	kl := int(binary.BigEndian.Uint16(buf[1:]))
	buf = buf[3:]
	if len(buf) < kl+4 {
		return false, "", nil, fmt.Errorf("direct: truncated shard key")
	}
	key = string(buf[:kl])
	buf = buf[kl:]
	vl := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < vl {
		return false, "", nil, fmt.Errorf("direct: truncated shard value")
	}
	if vl > 0 {
		value = append([]byte(nil), buf[:vl]...)
	}
	return get, key, value, nil
}

// backendHealth tracks liveness decisions for one shard — the hand-rolled
// equivalent of the DSL's S(x) guards and ActiveBackend bookkeeping.
type backendHealth struct {
	mu        sync.Mutex
	failures  int
	lastErr   error
	suspected bool
}

func (h *backendHealth) noteSuccess() {
	h.mu.Lock()
	h.failures = 0
	h.suspected = false
	h.mu.Unlock()
}

func (h *backendHealth) noteFailure(err error) {
	h.mu.Lock()
	h.failures++
	h.lastErr = err
	if h.failures >= 2 {
		h.suspected = true
	}
	h.mu.Unlock()
}

func (h *backendHealth) isSuspected() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.suspected
}

// ShardedRedis routes requests to N Redis instances — run as separate
// socket-served processes, as in the paper's deployment — by key hash or
// object size, with per-backend liveness tracking and failure reporting.
type ShardedRedis struct {
	backendSrvs []*wireServer
	clients     []*wireClient
	servers     []*miniredis.Server
	health      []*backendHealth
	timeout     time.Duration
	mode        ShardMode
	classes     []workload.SizeClass

	mu    sync.Mutex
	hits  []uint64
	sizes map[string]int // front-side key→size table for size sharding

	pingStop chan struct{}
	pingWG   sync.WaitGroup
}

// NewShardedRedis builds the front-end over n fresh instances with key-hash
// routing.
func NewShardedRedis(n int, timeout time.Duration) *ShardedRedis {
	return NewShardedRedisMode(n, ShardByKey, timeout)
}

// NewShardedRedisMode builds the front-end with an explicit routing mode.
func NewShardedRedisMode(n int, mode ShardMode, timeout time.Duration) *ShardedRedis {
	s := &ShardedRedis{
		timeout:  timeout,
		mode:     mode,
		classes:  workload.PaperSizeClasses(),
		hits:     make([]uint64, n),
		sizes:    map[string]int{},
		pingStop: make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		srv := miniredis.NewServer()
		ws, err := newWireServer(shardHandler(srv))
		if err != nil {
			panic(fmt.Sprintf("direct: listen: %v", err))
		}
		wc, err := dialWire(ws.addr(), timeout)
		if err != nil {
			panic(fmt.Sprintf("direct: dial: %v", err))
		}
		s.servers = append(s.servers, srv)
		s.backendSrvs = append(s.backendSrvs, ws)
		s.clients = append(s.clients, wc)
		s.health = append(s.health, &backendHealth{})
	}
	// Health monitor: periodic pings keep the suspected set fresh.
	s.pingWG.Add(1)
	go func() {
		defer s.pingWG.Done()
		ticker := time.NewTicker(timeout)
		defer ticker.Stop()
		for {
			select {
			case <-s.pingStop:
				return
			case <-ticker.C:
				for i, wc := range s.clients {
					if _, err := wc.call(wirePing, nil, s.timeout); err != nil {
						s.health[i].noteFailure(err)
					} else {
						s.health[i].noteSuccess()
					}
				}
			}
		}
	}()
	return s
}

// wire kinds for the socket protocol.
const (
	wireOpKind = 1
	wirePing   = 2
)

// shardHandler serves decoded operations against a backend server.
func shardHandler(srv *miniredis.Server) func(kind byte, body []byte) []byte {
	return func(kind byte, body []byte) []byte {
		if kind == wirePing {
			return []byte{1}
		}
		get, key, value, err := decodeShardOp(body)
		if err != nil {
			return []byte{0}
		}
		if get {
			v, ok, err := srv.Get(key)
			if err != nil || !ok {
				return []byte{0}
			}
			return append([]byte{1}, v...)
		}
		if err := srv.Set(key, value); err != nil {
			return []byte{0}
		}
		return []byte{1}
	}
}

// shardFor routes a key (and, for writes, its value size) to a shard.
func (s *ShardedRedis) shardFor(key string, valueSize int, isWrite bool) int {
	if s.mode == ShardBySize {
		s.mu.Lock()
		size, known := s.sizes[key]
		if isWrite {
			size, known = valueSize, true
			s.sizes[key] = valueSize
		}
		s.mu.Unlock()
		if known {
			for i, c := range s.classes {
				if size <= c.MaxBytes {
					return i % len(s.servers)
				}
			}
			return (len(s.classes) - 1) % len(s.servers)
		}
	}
	return int(workload.Djb2(key)) % len(s.servers)
}

// route serializes, ships and decodes one request with health accounting.
func (s *ShardedRedis) route(shard int, get bool, key string, value []byte) reply {
	s.count(shard)
	resp, err := s.clients[shard].call(wireOpKind, encodeShardOp(get, key, value), s.timeout)
	if err != nil {
		s.health[shard].noteFailure(err)
		return reply{err: err}
	}
	s.health[shard].noteSuccess()
	if len(resp) == 0 || resp[0] == 0 {
		return reply{found: false}
	}
	return reply{found: true, value: resp[1:]}
}

// Get routes a read.
func (s *ShardedRedis) Get(key string) ([]byte, bool, error) {
	i := s.shardFor(key, 0, false)
	r := s.route(i, true, key, nil)
	return r.value, r.found, r.err
}

// Set routes a write.
func (s *ShardedRedis) Set(key string, value []byte) error {
	i := s.shardFor(key, len(value), true)
	r := s.route(i, false, key, value)
	return r.err
}

func (s *ShardedRedis) count(i int) {
	s.mu.Lock()
	s.hits[i]++
	s.mu.Unlock()
}

// Hits returns per-shard request counts.
func (s *ShardedRedis) Hits() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.hits...)
}

// Suspected reports which backends the health monitor considers down.
func (s *ShardedRedis) Suspected() []bool {
	out := make([]bool, len(s.health))
	for i, h := range s.health {
		out[i] = h.isSuspected()
	}
	return out
}

// CrashShard kills one backend process (its listener and connections die).
func (s *ShardedRedis) CrashShard(i int) { s.backendSrvs[i].close() }

// Close tears everything down.
func (s *ShardedRedis) Close() {
	close(s.pingStop)
	s.pingWG.Wait()
	for _, wc := range s.clients {
		wc.close()
	}
	for _, ws := range s.backendSrvs {
		ws.close()
	}
	for _, srv := range s.servers {
		srv.Close()
	}
}
