// The cost pass suite: anti-pattern diagnostics over the traffic model,
// registered through the same analysis framework (and suppression plumbing)
// as the PR 3 passes. All four passes are placement-aware: the same program
// grades differently under different instance→location assignments, which is
// the point — the findings say what a deployment will pay, not what the
// code says.
package cost

import (
	"fmt"
	"strings"

	"csaw/internal/analysis"
	"csaw/internal/plan"
)

// Passes returns the cost suite in canonical order.
func Passes() []*analysis.Pass {
	return []*analysis.Pass{Poll, Unbounded, Fanouts, PingPongs}
}

// Poll flags guards (and body formulas) whose remote-qualified reads defeat
// event scheduling: keyed subscriptions cannot wake on another junction's
// table or on liveness, so the scheduler keeps a poll fallback — and across
// a transport bridge such reads never evaluate definitely true at all.
var Poll = &analysis.Pass{
	Name: "costpoll",
	Doc:  "guards poll-bound by remote-qualified reads; cross-location reads that can never wake",
	Run: func(ctx *analysis.Context) []analysis.Diagnostic {
		m := Build(ctx)
		var ds []analysis.Diagnostic
		for _, fq := range m.Order {
			j := m.Junctions[fq]
			for _, gr := range j.GuardReads {
				ds = append(ds, pollDiag(ctx, j, gr, true)...)
			}
			for _, gr := range j.BodyReads {
				ds = append(ds, pollDiag(ctx, j, gr, false)...)
			}
		}
		return ds
	},
}

// pollDiag grades one remote-qualified read. guard selects the harsher
// wording: a poll-bound guard costs scheduler wakeups forever, a body
// formula only stalls its own firing.
func pollDiag(ctx *analysis.Context, j *Junction, gr GuardRead, guard bool) []analysis.Diagnostic {
	o := gr.Origin
	if o.Junction == "" && !o.Liveness {
		return nil
	}
	here := ctx.Location(j.Info.Inst)
	cross := false
	peer := o.Junction
	if gr.Target != nil {
		cross = ctx.Location(gr.Target.Inst) != here
		peer = gr.Target.FQ
	}
	what := fmt.Sprintf("proposition %q of %s", o.Key, peer)
	if o.Liveness {
		what = fmt.Sprintf("liveness predicate %q of %s", o.Key, peer)
	}
	switch {
	case cross && guard:
		return []analysis.Diagnostic{{
			Severity: analysis.SevError,
			Pos:      gr.Pos,
			Msg: what + " is read across locations: over a transport bridge the read evaluates " +
				unknownWord(o) + ", so the guard can never become definitely true — co-locate the instances or pass the fact by update",
		}}
	case cross:
		return []analysis.Diagnostic{{
			Severity: analysis.SevError,
			Pos:      gr.Pos,
			Msg: what + " is read across locations: over a transport bridge the read evaluates " +
				unknownWord(o) + ", so this condition can never become definitely true — co-locate the instances or pass the fact by update",
		}}
	case guard && o.Liveness:
		return []analysis.Diagnostic{{
			Severity: analysis.SevWarning,
			Pos:      gr.Pos,
			Msg:      "guard reads " + what + ": liveness changes emit no KV updates, so the junction is poll-bound — pace the poll with a backoff if this is a watchdog",
		}}
	case guard && gr.Target != nil && gr.Target.Inst != j.Info.Inst:
		return []analysis.Diagnostic{{
			Severity: analysis.SevWarning,
			Pos:      gr.Pos,
			Msg:      "guard reads " + what + ": keyed subscriptions cannot wake on another instance's table, so the junction is poll-bound — prefer having the peer assert into this junction",
		}}
	case guard:
		return []analysis.Diagnostic{{
			Severity: analysis.SevWarning,
			Pos:      gr.Pos,
			Msg:      "guard reads " + what + ": junction-qualified reads bypass keyed subscriptions, so the junction is poll-bound",
		}}
	default:
		return []analysis.Diagnostic{{
			Severity: analysis.SevInfo,
			Pos:      gr.Pos,
			Msg:      "condition reads " + what + ": re-evaluated by polling, not woken by updates",
		}}
	}
}

// unknownWord names the three-valued outcome a bridged read collapses to:
// liveness of a non-local instance reads False, table reads read Unknown.
func unknownWord(o plan.ReadOrigin) string {
	if o.Liveness {
		return "False"
	}
	return "Unknown"
}

// Unbounded flags idx families whose element universe is not statically
// resolvable: the planner must classify every such read Remote, forcing the
// conservative poll even when all writers are local.
var Unbounded = &analysis.Pass{
	Name: "costunbounded",
	Doc:  "unbounded idx families forcing conservative Remote classification",
	Run: func(ctx *analysis.Context) []analysis.Diagnostic {
		m := Build(ctx)
		var ds []analysis.Diagnostic
		for _, fq := range m.Order {
			j := m.Junctions[fq]
			for _, gr := range j.GuardReads {
				if o := gr.Origin; o.Unbounded {
					ds = append(ds, analysis.Diagnostic{
						Severity: analysis.SevWarning,
						Pos:      gr.Pos,
						Msg:      fmt.Sprintf("idx family %q has no statically resolvable universe, so the guard is classified Remote and poll-bound — declare the idx over a set with known elements", o.IdxFamily),
					})
				}
			}
			for _, gr := range j.BodyReads {
				if o := gr.Origin; o.Unbounded {
					ds = append(ds, analysis.Diagnostic{
						Severity: analysis.SevInfo,
						Pos:      gr.Pos,
						Msg:      fmt.Sprintf("idx family %q has no statically resolvable universe; this condition is re-evaluated by polling", o.IdxFamily),
					})
				}
			}
		}
		return ds
	},
}

// Fanouts flags par statements whose arms update several distinct peers.
// The transport's batch envelopes coalesce per destination, so fanning the
// arms out across peers pays one frame per peer per wave where a single
// peer table would pay one frame total.
var Fanouts = &analysis.Pass{
	Name: "costfanout",
	Doc:  "par-arm fan-out across distinct peers defeating batch coalescing",
	Run: func(ctx *analysis.Context) []analysis.Diagnostic {
		m := Build(ctx)
		var ds []analysis.Diagnostic
		for _, fq := range m.Order {
			for _, f := range m.Junctions[fq].Fanouts {
				ds = append(ds, analysis.Diagnostic{
					Severity: analysis.SevInfo,
					Pos:      f.Pos,
					Msg: fmt.Sprintf("par arms update %d distinct peers (%s): batch coalescing packs frames per destination only — a shared peer table would coalesce the wave into one frame",
						len(f.Peers), strings.Join(f.Peers, ", ")),
				})
			}
		}
		return ds
	},
}

// PingPongs flags bodies holding multiple wait-separated exchanges with the
// same peer instance: each round pays a full ack round trip, and across
// locations the latency serializes into the firing.
var PingPongs = &analysis.Pass{
	Name: "costpingpong",
	Doc:  "multi-round cross-instance exchanges inside one firing",
	Run: func(ctx *analysis.Context) []analysis.Diagnostic {
		m := Build(ctx)
		var ds []analysis.Diagnostic
		for _, fq := range m.Order {
			j := m.Junctions[fq]
			here := ctx.Location(j.Info.Inst)
			for _, pp := range j.PingPongs {
				sev := analysis.SevInfo
				note := "each round pays an ack round trip"
				if peer := m.Junctions[pp.Peer]; peer != nil && ctx.Location(peer.Info.Inst) != here {
					sev = analysis.SevWarning
					note = "the peer is at another location, so every round pays wire latency"
				}
				ds = append(ds, analysis.Diagnostic{
					Severity: sev,
					Pos:      pp.Pos,
					Msg: fmt.Sprintf("firing exchanges %d wait-separated rounds with %s: %s — consider folding the rounds into one update or moving the protocol into the peer",
						pp.Rounds, pp.Peer, note),
				})
			}
		}
		return ds
	},
}
