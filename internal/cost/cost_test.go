package cost

import (
	"testing"
	"time"

	"csaw/internal/analysis"
	"csaw/internal/dsl"
	"csaw/internal/formula"
	"csaw/internal/patterns"
)

func modelOf(t *testing.T, p *dsl.Program) *Model {
	t.Helper()
	if err := dsl.Validate(p); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return Build(analysis.NewContext(p, 0))
}

func nopSrc(dsl.HostCtx) ([]byte, error)                { return []byte{}, nil }
func nopSink(dsl.HostCtx, []byte) error                 { return nil }
func nopHandle(_ dsl.HostCtx, b []byte) ([]byte, error) { return b, nil }

func snapshotModel(t *testing.T) *Model {
	return modelOf(t, patterns.Snapshot(patterns.SnapshotConfig{
		Timeout: time.Second, Capture: nopSrc, Apply: nopSink,
	}))
}

func shardingModel(t *testing.T) *Model {
	return modelOf(t, patterns.Sharding(patterns.ShardingConfig{
		N: 4, Timeout: time.Second,
		Choose:         func(dsl.HostCtx) (int, error) { return 0, nil },
		CaptureRequest: nopSrc, HandleRequest: nopHandle, DeliverResponse: nopSink,
	}))
}

func edgeOf(t *testing.T, m *Model, from, to string) *Edge {
	t.Helper()
	for _, e := range m.Edges {
		if e.From == from && e.To == to {
			return e
		}
	}
	t.Fatalf("no edge %s -> %s in %+v", from, to, m.Edges)
	return nil
}

func TestSnapshotModel(t *testing.T) {
	m := snapshotModel(t)

	act := m.Junctions["Act::junction"]
	if act.Guard != GuardInvoked {
		t.Fatalf("Act guard = %q, want invoked", act.Guard)
	}
	if act.Activation != 1 || act.Updates != 2 || act.Rounds != 2 {
		t.Fatalf("Act activation/updates/rounds = %v/%v/%v, want 1/2/2", act.Activation, act.Updates, act.Rounds)
	}
	// No par in the body: nothing coalesces, frames == updates.
	if act.Frames != act.Updates {
		t.Fatalf("Act frames = %v, want %v", act.Frames, act.Updates)
	}

	aud := m.Junctions["Aud::junction"]
	if aud.Guard != GuardEvent {
		t.Fatalf("Aud guard = %q, want event", aud.Guard)
	}
	// Act's assert lands in Aud's guard read-set once per drive.
	if aud.Activation != 1 {
		t.Fatalf("Aud activation = %v, want 1", aud.Activation)
	}

	fwd := edgeOf(t, m, "Act::junction", "Aud::junction")
	if fwd.Updates != 2 || fwd.PerDrive != 2 {
		t.Fatalf("Act->Aud = %v/%v per firing/drive, want 2/2", fwd.Updates, fwd.PerDrive)
	}
	back := edgeOf(t, m, "Aud::junction", "Act::junction")
	if back.Updates != 1 || back.PerDrive != 1 {
		t.Fatalf("Aud->Act = %v/%v per firing/drive, want 1/1", back.Updates, back.PerDrive)
	}
	if len(m.Edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(m.Edges))
	}
}

func TestShardingModel(t *testing.T) {
	m := shardingModel(t)

	fnt := m.Junctions["Fnt::junction"]
	if fnt.Guard != GuardInvoked || fnt.Updates != 2 {
		t.Fatalf("Fnt guard/updates = %q/%v, want invoked/2", fnt.Guard, fnt.Updates)
	}
	for i := 1; i <= 4; i++ {
		bck := "Bck" + string(rune('0'+i)) + "::junction"
		j := m.Junctions[bck]
		if j.Guard != GuardEvent {
			t.Fatalf("%s guard = %q, want event", bck, j.Guard)
		}
		// The idx-selected assert reaches each shard 1/4 of the time.
		if j.Activation != 0.25 {
			t.Fatalf("%s activation = %v, want 0.25", bck, j.Activation)
		}
		fwd := edgeOf(t, m, "Fnt::junction", bck)
		if fwd.Updates != 0.5 || fwd.PerDrive != 0.5 {
			t.Fatalf("Fnt->%s = %v/%v, want 0.5/0.5", bck, fwd.Updates, fwd.PerDrive)
		}
		back := edgeOf(t, m, bck, "Fnt::junction")
		if back.Updates != 2 || back.PerDrive != 0.5 {
			t.Fatalf("%s->Fnt = %v/%v, want 2/0.5", bck, back.Updates, back.PerDrive)
		}
	}
	if len(m.Edges) != 8 {
		t.Fatalf("edges = %d, want 8", len(m.Edges))
	}
}

func TestCachingModel(t *testing.T) {
	m := modelOf(t, patterns.Caching(patterns.CachingConfig{
		Timeout:        time.Second,
		CheckCacheable: func(dsl.HostCtx) (bool, error) { return true, nil },
		LookupCache:    func(dsl.HostCtx) (bool, error) { return false, nil },
		CaptureRequest: nopSrc, DeliverResponse: nopSink,
		UpdateCache: func(dsl.HostCtx) error { return nil },
		ComputeF:    nopHandle,
	}))
	fwd := edgeOf(t, m, "Cache::junction", "Fun::junction")
	if fwd.PerDrive != 2 {
		t.Fatalf("Cache->Fun per drive = %v, want 2", fwd.PerDrive)
	}
	back := edgeOf(t, m, "Fun::junction", "Cache::junction")
	if back.PerDrive != 2 {
		t.Fatalf("Fun->Cache per drive = %v, want 2", back.PerDrive)
	}
}

func TestParallelShardingModel(t *testing.T) {
	m := modelOf(t, patterns.ParallelSharding(patterns.ParallelShardingConfig{
		N: 3, Timeout: time.Second,
		ChooseSet:      func(dsl.HostCtx) ([]int, error) { return []int{0, 1, 2}, nil },
		CaptureRequest: nopSrc, HandleRequest: nopHandle,
	}))
	for i := 1; i <= 3; i++ {
		bck := "Bck" + string(rune('0'+i)) + "::junction"
		fwd := edgeOf(t, m, "Fnt::junction", bck)
		if fwd.Updates != 2 || fwd.PerDrive != 2 {
			t.Fatalf("Fnt->%s = %v/%v, want 2/2", bck, fwd.Updates, fwd.PerDrive)
		}
		back := edgeOf(t, m, bck, "Fnt::junction")
		if back.Updates != 1 || back.PerDrive != 1 {
			t.Fatalf("%s->Fnt = %v/%v, want 1/1", bck, back.Updates, back.PerDrive)
		}
	}
	// ForExpr nests Par{b1, Par{b2, b3}}: both levels fan out across
	// distinct peers, and nothing coalesces.
	fnt := m.Junctions["Fnt::junction"]
	if len(fnt.Fanouts) != 2 {
		t.Fatalf("fanouts = %+v, want 2 sites", fnt.Fanouts)
	}
	if got := len(fnt.Fanouts[0].Peers) + len(fnt.Fanouts[1].Peers); got != 5 {
		t.Fatalf("fanout peers = %+v, want 3 outer + 2 inner", fnt.Fanouts)
	}
	if fnt.Frames != fnt.Updates {
		t.Fatalf("frames = %v, want %v (distinct peers cannot coalesce)", fnt.Frames, fnt.Updates)
	}
}

// coalesceProgram sends two par arms to the same peer junction: the batch
// envelopes pack each wave into one frame per destination.
func coalesceProgram() *dsl.Program {
	p := dsl.NewProgram()
	peer := dsl.J("b", "j")
	p.Type("TA").Junction("j", dsl.Def(
		dsl.Decls(dsl.InitData{Name: "n"}),
		dsl.Par{
			dsl.Write{Data: "n", To: peer},
			dsl.Write{Data: "n", To: peer},
		},
	))
	p.Type("TB").Junction("j", dsl.Def(
		dsl.Decls(dsl.InitData{Name: "n"}),
		dsl.Skip{},
	))
	p.Instance("a", "TA").Instance("b", "TB")
	p.SetMain(dsl.Par{dsl.Start{Instance: "a"}, dsl.Start{Instance: "b"}})
	return p
}

func TestParCoalescing(t *testing.T) {
	m := modelOf(t, coalesceProgram())
	j := m.Junctions["a::j"]
	if j.Updates != 2 {
		t.Fatalf("updates = %v, want 2", j.Updates)
	}
	if j.Frames != 1 {
		t.Fatalf("frames = %v, want 1 (two same-peer arms coalesce)", j.Frames)
	}
	if len(j.Fanouts) != 0 {
		t.Fatalf("unexpected fanouts %+v for a single-peer par", j.Fanouts)
	}
}

// pingPongProgram exchanges two wait-separated rounds with instance b and
// interleaves updates to a second junction of its own instance, which must
// not count as ping-pong.
func pingPongProgram() *dsl.Program {
	p := dsl.NewProgram()
	p.Type("TA").
		Junction("j", dsl.Def(
			dsl.Decls(dsl.InitProp{Name: "Ack", Init: false}),
			dsl.Assert{Target: dsl.J("b", "j"), Prop: dsl.PR("Ping")},
			dsl.Assert{Target: dsl.J("a", "k"), Prop: dsl.PR("Local")},
			dsl.Wait{Cond: formula.P("Ack")},
			dsl.Assert{Target: dsl.J("b", "j"), Prop: dsl.PR("Pong")},
			dsl.Assert{Target: dsl.J("a", "k"), Prop: dsl.PR("Local")},
		)).
		Junction("k", dsl.Def(
			dsl.Decls(dsl.InitProp{Name: "Local", Init: false}),
			dsl.Retract{Prop: dsl.PR("Local")},
		).Guarded(formula.P("Local")))
	p.Type("TB").Junction("j", dsl.Def(
		dsl.Decls(dsl.InitProp{Name: "Ping", Init: false}, dsl.InitProp{Name: "Pong", Init: false}),
		dsl.Retract{Prop: dsl.PR("Ping")},
	).Guarded(formula.P("Ping")))
	p.Instance("a", "TA").Instance("b", "TB")
	p.SetMain(dsl.Par{dsl.Start{Instance: "a"}, dsl.Start{Instance: "b"}})
	return p
}

func TestPingPongDetection(t *testing.T) {
	m := modelOf(t, pingPongProgram())
	j := m.Junctions["a::j"]
	if len(j.PingPongs) != 1 {
		t.Fatalf("ping-pongs = %+v, want exactly the b::j exchange", j.PingPongs)
	}
	pp := j.PingPongs[0]
	if pp.Peer != "b::j" || pp.Rounds != 2 {
		t.Fatalf("ping-pong = %+v, want 2 rounds with b::j", pp)
	}

	// The same-instance a::k exchange crosses the wait too, but instance-
	// internal protocols never pay wire latency.
	for _, got := range j.PingPongs {
		if got.Peer == "a::k" {
			t.Fatalf("same-instance exchange flagged: %+v", got)
		}
	}

	rep, err := analysis.Analyze(pingPongProgram(), &analysis.Config{
		Passes:    Passes(),
		Placement: map[string]string{"a": "edge", "b": "core"},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Pass == "costpingpong" {
			found = true
			if d.Severity != analysis.SevWarning {
				t.Fatalf("cross-location ping-pong severity = %v, want warning: %+v", d.Severity, d)
			}
		}
	}
	if !found {
		t.Fatalf("costpingpong reported nothing: %+v", rep.Diagnostics)
	}
}

func TestGuardClassesWatchedFailover(t *testing.T) {
	m := modelOf(t, patterns.WatchedFailover(patterns.WatchedFailoverConfig{
		Timeout:        time.Second,
		PrepareRequest: nopSrc, HandleRequest: nopHandle, DeliverResponse: nopSink,
	}))
	for _, jn := range []string{"w::cs", "w::co", "w::cunrecov"} {
		j := m.Junctions[jn]
		if j == nil || j.Guard != GuardPoll {
			t.Fatalf("%s guard = %+v, want poll (reads @running of other instances)", jn, j)
		}
		if len(j.GuardReads) == 0 {
			t.Fatalf("%s records no guard reads", jn)
		}
	}
}

func TestSnapshotCostPassesClean(t *testing.T) {
	p := patterns.Snapshot(patterns.SnapshotConfig{Timeout: time.Second, Capture: nopSrc, Apply: nopSink})
	rep, err := analysis.Analyze(p, &analysis.Config{
		Passes:    Passes(),
		Placement: map[string]string{"Act": "app", "Aud": "audit"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() {
		t.Fatalf("snapshot should grade clean even split across locations, got %+v", rep.Diagnostics)
	}
}

func TestOptimizeSharding(t *testing.T) {
	m := shardingModel(t)
	placement := map[string]string{
		"Fnt": "edge", "Bck1": "core", "Bck2": "core", "Bck3": "core", "Bck4": "core",
	}
	if got := CrossTraffic(m, placement); got != 4 {
		t.Fatalf("initial cross traffic = %v, want 4", got)
	}
	final, moves := Optimize(m, placement, map[string]bool{"Fnt": true, "Bck1": true, "Bck2": true}, nil)
	if len(moves) != 2 {
		t.Fatalf("moves = %+v, want Bck3 and Bck4 relocated", moves)
	}
	for _, mv := range moves {
		if mv.To != "edge" || mv.Delta != -1 {
			t.Fatalf("move = %+v, want ->edge with delta -1", mv)
		}
	}
	if final["Bck3"] != "edge" || final["Bck4"] != "edge" || final["Bck1"] != "core" {
		t.Fatalf("final placement = %v", final)
	}
	if got := CrossTraffic(m, final); got != 2 {
		t.Fatalf("final cross traffic = %v, want 2", got)
	}
	// The input placement is never mutated.
	if placement["Bck3"] != "core" {
		t.Fatalf("Optimize mutated its input: %v", placement)
	}
}

func TestOptimizeRespectsGuardColocation(t *testing.T) {
	// A guard reading another instance's table pins the pair together no
	// matter what update traffic a split would save.
	p := dsl.NewProgram()
	p.Type("TA").Junction("j", dsl.Def(
		dsl.Decls(dsl.InitData{Name: "n"}),
		dsl.Write{Data: "n", To: dsl.J("b", "j")},
	))
	p.Type("TB").Junction("j", dsl.Def(
		dsl.Decls(dsl.InitProp{Name: "Work", Init: false}, dsl.InitData{Name: "n"}),
		dsl.Skip{},
	).Guarded(formula.At("a::watch", "Work")))
	p.Type("TW").Junction("watch", dsl.Def(
		dsl.Decls(dsl.InitProp{Name: "Work", Init: false}),
		dsl.Retract{Prop: dsl.PR("Work")},
	))
	p.Instance("a", "TW").Instance("b", "TB").Instance("src", "TA")
	p.SetMain(dsl.Par{dsl.Start{Instance: "a"}, dsl.Start{Instance: "b"}, dsl.Start{Instance: "src"}})
	m := modelOf(t, p)

	// b's guard reads a::watch: moving b next to the src traffic would save
	// updates but break the guard, so b must stay with a.
	placement := map[string]string{"a": "x", "b": "x", "src": "y"}
	final, _ := Optimize(m, placement, map[string]bool{"a": true, "src": true}, nil)
	if final["b"] != "x" {
		t.Fatalf("optimizer split a guard-read pair: %v", final)
	}
}

func TestReportCrossAccounting(t *testing.T) {
	m := snapshotModel(t)
	rep := m.Report(map[string]string{"Act": "app", "Aud": "audit"})
	if rep.CrossUpdatesPerDrive != 3 {
		t.Fatalf("cross per drive = %v, want 3", rep.CrossUpdatesPerDrive)
	}
	for _, e := range rep.Edges {
		if !e.Cross {
			t.Fatalf("edge %+v should be cross under a split placement", e)
		}
	}
	rep = m.Report(nil)
	if rep.CrossUpdatesPerDrive != 0 {
		t.Fatalf("co-located cross per drive = %v, want 0", rep.CrossUpdatesPerDrive)
	}
}
