package cost

import (
	"fmt"

	"csaw/internal/analysis"
	"csaw/internal/runtime"
)

// ApplyMove executes one optimizer-suggested relocation against a live
// system: the static analysis half (Optimize) decides the move, the runtime
// half (System.MigrateInstance) performs it online. The move's From is
// checked against the system's current placement first, so a stale plan —
// computed before some other reconfiguration — fails loudly instead of
// silently moving an instance the optimizer priced somewhere else.
func ApplyMove(sys *runtime.System, mv analysis.PlacementMove) error {
	cur := sys.Deployment().LocationOf(mv.Instance)
	if cur != mv.From {
		return fmt.Errorf("cost: stale move for %q: plan says %s→%s but instance is at %s",
			mv.Instance, mv.From, mv.To, cur)
	}
	return sys.MigrateInstance(mv.Instance, mv.To)
}
