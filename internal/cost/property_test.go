package cost_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"csaw/internal/analysis"
	"csaw/internal/cost"
	"csaw/internal/dsl"
	"csaw/internal/formula"
)

// progGen mirrors the analysis package's random-program generator, extended
// with the reads the cost model cares about: junction-qualified propositions
// and liveness predicates.
type progGen struct {
	r     *rand.Rand
	insts []string
	juncs []dsl.JunctionRef
}

var genProps = []string{"P0", "P1", "P2"}
var genData = []string{"d0", "d1"}

func (g *progGen) prop() string { return genProps[g.r.Intn(len(genProps))] }
func (g *progGen) data() string { return genData[g.r.Intn(len(genData))] }

func (g *progGen) formula(depth int) formula.Formula {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			// Junction-qualified read of a random peer's table.
			ref := g.juncs[g.r.Intn(len(g.juncs))]
			return formula.At(ref.Instance+"::"+ref.Junction, g.prop())
		case 1:
			return formula.P("@running")
		default:
			return formula.P(g.prop())
		}
	}
	switch g.r.Intn(3) {
	case 0:
		return formula.Not(g.formula(depth - 1))
	case 1:
		return formula.And(g.formula(depth-1), g.formula(depth-1))
	default:
		return formula.Or(g.formula(depth-1), g.formula(depth-1))
	}
}

func (g *progGen) target() dsl.JunctionRef {
	if g.r.Intn(2) == 0 {
		return dsl.JunctionRef{}
	}
	return g.juncs[g.r.Intn(len(g.juncs))]
}

func (g *progGen) expr(depth int) dsl.Expr {
	leaf := depth <= 0
	switch n := g.r.Intn(15); {
	case n == 0:
		return dsl.Skip{}
	case n == 1:
		return dsl.Assert{Target: g.target(), Prop: dsl.PR(g.prop())}
	case n == 2:
		return dsl.Retract{Target: g.target(), Prop: dsl.PR(g.prop())}
	case n == 3:
		return dsl.Save{Data: g.data(), From: func(dsl.HostCtx) ([]byte, error) { return nil, nil }}
	case n == 4:
		return dsl.Restore{Data: g.data(), Into: func(dsl.HostCtx, []byte) error { return nil }}
	case n == 5:
		return dsl.Write{Data: g.data(), To: g.juncs[g.r.Intn(len(g.juncs))]}
	case n == 6:
		return dsl.Verify{Cond: g.formula(1)}
	case n == 7 && !leaf:
		return dsl.Wait{Cond: g.formula(1)}
	case n == 8 && !leaf:
		return dsl.Seq(g.body(depth - 1))
	case n == 9 && !leaf:
		return dsl.Par(g.body(depth - 1))
	case n == 10 && !leaf:
		return dsl.Txn{Body: g.body(depth - 1)}
	case n == 11 && !leaf:
		return dsl.OtherwiseT(g.expr(depth-1), time.Millisecond, g.expr(depth-1))
	case n == 12 && !leaf:
		if g.r.Intn(2) == 0 {
			return dsl.If{Cond: g.formula(1), Then: g.expr(depth - 1)}
		}
		return dsl.If{Cond: g.formula(1), Then: g.expr(depth - 1), Else: g.expr(depth - 1)}
	case n == 13 && !leaf:
		terms := []dsl.Terminator{dsl.TermBreak, dsl.TermReconsider}
		arms := make([]dsl.CaseArm, 1+g.r.Intn(2))
		for i := range arms {
			arms[i] = dsl.Arm(g.formula(1), terms[g.r.Intn(len(terms))], g.expr(depth-1))
		}
		return dsl.Case{Arms: arms, Otherwise: []dsl.Expr{g.expr(depth - 1)}}
	case n == 14 && !leaf:
		return dsl.ParN{N: 1 + g.r.Intn(3), Body: g.body(depth - 1)}
	default:
		return dsl.Skip{}
	}
}

func (g *progGen) body(depth int) []dsl.Expr {
	out := make([]dsl.Expr, 1+g.r.Intn(3))
	for i := range out {
		out[i] = g.expr(depth)
	}
	return out
}

func genProgram(seed int64) *dsl.Program {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	nTypes := 1 + g.r.Intn(3)
	for i := 0; i < nTypes; i++ {
		g.insts = append(g.insts, fmt.Sprintf("i%d", i))
		g.juncs = append(g.juncs, dsl.J(fmt.Sprintf("i%d", i), "j"))
	}

	p := dsl.NewProgram()
	for i := 0; i < nTypes; i++ {
		decls := dsl.Decls(
			dsl.InitProp{Name: "P0", Init: g.r.Intn(2) == 0},
			dsl.InitProp{Name: "P1", Init: g.r.Intn(2) == 0},
			dsl.InitProp{Name: "P2", Init: g.r.Intn(2) == 0},
			dsl.InitData{Name: "d0"},
			dsl.InitData{Name: "d1"},
		)
		def := dsl.Def(decls, g.body(3)...)
		if g.r.Intn(2) == 0 {
			def = def.Guarded(g.formula(1))
		}
		p.Type(fmt.Sprintf("tau%d", i)).Junction("j", def)
		p.Instance(g.insts[i], fmt.Sprintf("tau%d", i))
	}
	starts := dsl.Par{}
	for _, in := range g.insts {
		starts = append(starts, dsl.Start{Instance: in})
	}
	p.SetMain(starts)
	return p
}

// genPlacement splits the generated instances across up to two locations,
// deterministically from the seed.
func genPlacement(seed int64, p *dsl.Program) map[string]string {
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	locs := []string{"", "east", "west"}
	placement := map[string]string{}
	for _, inst := range p.InstanceNames() {
		placement[inst] = locs[r.Intn(len(locs))]
	}
	return placement
}

// TestCostSuiteOnRandomPrograms drives the cost passes, model, and optimizer
// over generated programs: nothing may panic, and two runs over the same
// program under the same placement must produce byte-identical reports —
// determinism is what makes CostSuppressions and the CI gate trustworthy.
func TestCostSuiteOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			run := func() ([]byte, *analysis.Report) {
				p := genProgram(seed)
				placement := genPlacement(seed, p)
				rep, err := analysis.Analyze(p, &analysis.Config{Passes: cost.Passes(), Placement: placement})
				if err != nil {
					t.Fatalf("generated program invalid: %v", err)
				}
				if err := dsl.Validate(p); err != nil {
					t.Fatal(err)
				}
				m := cost.Build(analysis.NewContext(p, 0))
				final, moves := cost.Optimize(m, placement, nil, []string{"", "east", "west"})
				cr := m.Report(final)
				cr.Moves = moves
				cr.CrossAfterMoves = cost.CrossTraffic(m, final)
				var buf bytes.Buffer
				if err := analysis.EncodeReports(&buf, []analysis.ArchReport{{
					Arch: "generated", Diagnostics: rep.Diagnostics, Suppressed: rep.Suppressed, Cost: cr,
				}}); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes(), rep
			}
			b1, r1 := run()
			b2, r2 := run()
			if !bytes.Equal(b1, b2) {
				t.Fatalf("nondeterministic cost report:\n%s\nvs\n%s", b1, b2)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("nondeterministic diagnostics: %+v vs %+v", r1, r2)
			}
		})
	}
}
