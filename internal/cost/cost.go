// Package cost is a static communication-cost model for validated C-Saw
// programs: from the plan-level read/write sets and the §8.7 topology it
// predicts, per junction, how a firing prices out on the remote-update plane
// — updates sent (each one message plus a delivery ack), wire frames after
// par-arm batch coalescing, sequential ack round trips — and propagates
// guard-triggering updates into per-drive activations, yielding a
// whole-architecture cross-junction traffic matrix that can be priced under
// an instance→location placement.
//
// The model is a steady-state upper bound: every statement is charged once
// per firing (all case/if alternatives counted), idx-variable targets spread
// their weight uniformly over the idx's element universe, and otherwise
// handlers (failure paths) are excluded. The csaw-bench "Cost-validation"
// experiment cross-checks the predicted per-edge ranking against
// obsv-measured remote.queued counts over real TCP.
//
// On top of the model sit the cost passes (passes.go) — poll-bound and
// cross-location guard reads, txn ping-pong, coalescing-defeating fan-out,
// unbounded idx families — and a greedy placement optimizer (placement.go).
package cost

import (
	"fmt"
	"sort"
	"strings"

	"csaw/internal/analysis"
	"csaw/internal/dsl"
	"csaw/internal/formula"
	"csaw/internal/plan"
)

// Guard scheduling classes, mirroring csawc's summary terminology.
const (
	GuardInvoked       = "invoked"
	GuardEvent         = "event"
	GuardPoll          = "poll"
	GuardPollUnbounded = "poll-unbounded"
)

// activationCap bounds activation propagation so guard-trigger cycles cannot
// diverge; a junction predicted to fire more than this per drive unit is
// effectively saturated.
const activationCap = 64

// activationSweeps is the fixed number of Jacobi sweeps used to propagate
// activations; paths longer than this through guarded junctions saturate the
// model's precision, not its safety.
const activationSweeps = 16

// Model is the static traffic model of one architecture.
type Model struct {
	Ctx *analysis.Context
	// Junctions maps FQ to per-junction costs; Order lists FQs sorted.
	Junctions map[string]*Junction
	Order     []string
	// Edges is the cross-junction update matrix, sorted by (From, To).
	Edges []*Edge
}

// Junction is the per-(instance, junction) cost summary.
type Junction struct {
	Info *analysis.JunctionInfo
	// Guard classifies scheduling (GuardInvoked/Event/Poll/PollUnbounded).
	Guard string
	// GuardReads lists the guard's remote-qualified reads with their
	// resolved declaring junction (nil Target when unresolvable).
	GuardReads []GuardRead
	// guardProps is the set of local keys the guard consults — an incoming
	// assert/retract of one of these can trigger a scheduling.
	guardProps map[string]bool
	// Activation is the predicted firings per drive unit (one invocation
	// round of the root junctions).
	Activation float64
	// Updates / Frames / Rounds are per firing: remote updates sent, wire
	// frames after par coalescing, and the sequential acked-round-trip depth.
	Updates float64
	Frames  float64
	Rounds  int
	// PingPongs and Fanouts are the anti-pattern sites the passes report.
	PingPongs []PingPong
	Fanouts   []Fanout
	// BodyReads are remote-qualified formula reads in the body (wait/verify/
	// if/case conditions), which evaluate Unknown across a bridge.
	BodyReads []GuardRead

	out       map[string]*Edge
	coalesced float64
}

// GuardRead is one remote-qualified read of a guard or body formula.
type GuardRead struct {
	Pos    string
	Origin plan.ReadOrigin
	// Target is the resolved declaring junction; nil when the qualifier does
	// not resolve statically.
	Target *analysis.JunctionInfo
}

// Edge is one directed cross-junction update flow.
type Edge struct {
	From, To string
	// Updates is remote updates per firing of From; PerDrive scales by
	// From's activation.
	Updates  float64
	PerDrive float64
	// guardKey is the per-firing weight of updates landing in To's guard
	// read-set — the activation the edge propagates.
	guardKey float64
	// GuardRead marks a zero-traffic colocation edge: From's *guard* reads
	// To's table or liveness in-process, which a transport bridge breaks.
	GuardRead bool
}

// PingPong is one body whose firing holds ≥2 wait-separated exchanges with
// the same peer instance.
type PingPong struct {
	Pos    string
	Peer   string // peer junction FQ
	Rounds int
}

// Fanout is one par statement whose arms update several distinct peers —
// per-destination batch coalescing cannot pack frames across destinations.
type Fanout struct {
	Pos   string
	Arms  int
	Peers []string // distinct peer junction FQs, sorted
}

// Build computes the model for an analysis context. It never fails: anything
// unresolvable degrades to the conservative reading (weight dropped, read
// kept as a poll-bound classification).
func Build(ctx *analysis.Context) *Model {
	m := &Model{Ctx: ctx, Junctions: map[string]*Junction{}}
	for _, ji := range ctx.Juncs {
		j := &Junction{Info: ji, guardProps: map[string]bool{}, out: map[string]*Edge{}}
		m.Junctions[ji.FQ] = j
		m.Order = append(m.Order, ji.FQ)
		m.classifyGuard(j)
	}
	sort.Strings(m.Order)
	for _, fq := range m.Order {
		m.walkBody(m.Junctions[fq])
	}
	m.linkGuardEdges()
	m.propagateActivation()
	for _, fq := range m.Order {
		j := m.Junctions[fq]
		for _, e := range j.out {
			e.PerDrive = e.Updates * j.Activation
			m.Edges = append(m.Edges, e)
		}
	}
	sort.Slice(m.Edges, func(i, k int) bool {
		if m.Edges[i].From != m.Edges[k].From {
			return m.Edges[i].From < m.Edges[k].From
		}
		return m.Edges[i].To < m.Edges[k].To
	})
	return m
}

// resolveQualifier resolves a formula qualifier ("inst::jn" or a bare
// element/instance name) to a junction info; nil when it does not resolve.
func (m *Model) resolveQualifier(q string) *analysis.JunctionInfo {
	if q == "" {
		return nil
	}
	if !strings.Contains(q, "::") {
		inst, jn, err := dsl.ResolveElemJunction(m.Ctx.Prog, q)
		if err != nil {
			return nil
		}
		q = inst + "::" + jn
	}
	return m.Ctx.Lookup(q)
}

// classifyGuard computes the scheduling class and remote read list of a
// junction's guard.
func (m *Model) classifyGuard(j *Junction) {
	ji := j.Info
	if ji.Def.Guard == nil || ji.Def.Manual {
		j.Guard = GuardInvoked
		return
	}
	rs := plan.FormulaReadSet(ji, ji.Def.Guard)
	for _, k := range rs.Props {
		j.guardProps[k] = true
	}
	pos := ji.FQ + "/guard"
	for _, o := range rs.Origins {
		if !o.Remote {
			continue
		}
		j.GuardReads = append(j.GuardReads, GuardRead{
			Pos:    pos,
			Origin: o,
			Target: m.resolveQualifier(o.Junction),
		})
	}
	switch {
	case rs.Unbounded:
		j.Guard = GuardPollUnbounded
	case rs.Remote:
		j.Guard = GuardPoll
	default:
		j.Guard = GuardEvent
	}
}

// update is one remote update statement, resolved and weighted.
type update struct {
	pos      string
	to       *analysis.JunctionInfo
	weight   float64
	guardKey float64 // portion of weight landing in to's guard read-set
}

// walkBody charges a junction's body: per-firing updates/frames/rounds, the
// update edges, fan-out sites, ping-pong segments, and remote body reads.
func (m *Model) walkBody(j *Junction) {
	ji := j.Info
	var ops []interface{} // update | waitMark, in program order
	type waitMark struct{}

	// emit resolves one assert/retract/write statement to weighted updates.
	emit := func(pos string, target dsl.JunctionRef, keys []string, w float64, data bool) []update {
		if target.IsLocal() || target.MeJunction {
			return nil
		}
		targets := m.Ctx.ResolveTargets(ji, target)
		if len(targets) == 0 {
			return nil
		}
		per := w
		if target.Idx != "" {
			// An idx-selected target reaches exactly one of its universe per
			// execution; spread the weight uniformly.
			per = w / float64(len(targets))
		}
		var out []update
		for _, t := range targets {
			if t.FQ == ji.FQ {
				continue // self-updates stay in the local table
			}
			u := update{pos: pos, to: t, weight: per}
			if !data {
				tj := m.Junctions[t.FQ]
				for _, k := range keys {
					if tj != nil && tj.guardProps[k] {
						u.guardKey += per
						break
					}
				}
			}
			out = append(out, u)
		}
		return out
	}

	record := func(us []update) {
		for _, u := range us {
			j.Updates += u.weight
			e := j.out[u.to.FQ]
			if e == nil {
				e = &Edge{From: ji.FQ, To: u.to.FQ}
				j.out[u.to.FQ] = e
			}
			e.Updates += u.weight
			e.guardKey += u.guardKey
			ops = append(ops, u)
		}
	}

	var walk func(e dsl.Expr, pos string, w float64) ([]update, int)
	// walk returns the updates emitted in e's subtree and the sequential
	// acked-round-trip depth of e.
	walkSeq := func(body []dsl.Expr, pos, seg string, w float64) ([]update, int) {
		var all []update
		depth := 0
		for i, child := range body {
			us, d := walk(child, fmt.Sprintf("%s%s[%d]", pos, seg, i), w)
			all = append(all, us...)
			depth += d
		}
		return all, depth
	}
	walk = func(e dsl.Expr, pos string, w float64) ([]update, int) {
		switch n := e.(type) {
		case nil:
			return nil, 0
		case dsl.Seq:
			return walkSeq(n, pos, "", w)
		case dsl.Scope:
			return walkSeq(n.Body, pos, "/scope", w)
		case dsl.Txn:
			return walkSeq(n.Body, pos, "/txn", w)
		case dsl.Par:
			var all []update
			depth := 0
			armPeers := make([]map[string]float64, len(n))
			for i, child := range n {
				us, d := walk(child, fmt.Sprintf("%s/par[%d]", pos, i), w)
				all = append(all, us...)
				if d > depth {
					depth = d // arms pipeline concurrently
				}
				armPeers[i] = map[string]float64{}
				for _, u := range us {
					armPeers[i][u.to.FQ] += u.weight
				}
			}
			m.parShape(j, pos, armPeers)
			return all, depth
		case dsl.ParN:
			us, d := walkSeq(n.Body, pos, "/parn", w*float64(n.N))
			if n.N > 1 && len(us) > 0 {
				// n identical replicas to the same peers coalesce like par
				// arms: one envelope per destination per wave.
				peers := map[string]float64{}
				for _, u := range us {
					peers[u.to.FQ] += u.weight / float64(n.N)
				}
				arms := make([]map[string]float64, n.N)
				for i := range arms {
					arms[i] = peers
				}
				m.parShape(j, pos, arms)
			}
			return us, d
		case dsl.Otherwise:
			// Failure handlers are off the steady-state path.
			return walk(n.Try, pos+"/try", w)
		case dsl.If:
			m.bodyReads(j, pos, n.Cond)
			us1, d1 := walk(n.Then, pos+"/then", w)
			us2, d2 := walk(n.Else, pos+"/else", w)
			if d2 > d1 {
				d1 = d2
			}
			return append(us1, us2...), d1
		case dsl.Case:
			var all []update
			depth := 0
			for i, a := range n.Arms {
				m.bodyReads(j, fmt.Sprintf("%s/arm[%d]", pos, i), a.Cond)
				us, d := walkSeq(a.Body, pos, fmt.Sprintf("/arm[%d]", i), w)
				all = append(all, us...)
				if d > depth {
					depth = d
				}
			}
			us, d := walkSeq(n.Otherwise, pos, "/otherwise", w)
			all = append(all, us...)
			if d > depth {
				depth = d
			}
			return all, depth
		case dsl.Assert:
			keys, _ := ji.PropKeys(n.Prop)
			us := emit(pos, n.Target, keys, w, false)
			record(us)
			return us, roundDepth(us)
		case dsl.Retract:
			keys, _ := ji.PropKeys(n.Prop)
			us := emit(pos, n.Target, keys, w, false)
			record(us)
			return us, roundDepth(us)
		case dsl.Write:
			us := emit(pos, n.To, nil, w, true)
			record(us)
			return us, roundDepth(us)
		case dsl.Wait:
			m.bodyReads(j, pos, n.Cond)
			ops = append(ops, waitMark{})
			return nil, 0
		case dsl.Verify:
			m.bodyReads(j, pos, n.Cond)
			return nil, 0
		default:
			return nil, 0
		}
	}

	_, j.Rounds = walkSeq(ji.Def.Body, ji.FQ+"/body", "", 1)

	// Frames: updates minus what par-arm coalescing saves.
	j.Frames = j.Updates - j.coalesced
	if j.Frames < 0 {
		j.Frames = 0
	}

	// Ping-pong: split the in-order op stream on waits; a peer updated in
	// ≥2 segments pays ≥2 wait-separated cross-instance exchanges per firing.
	segs := [][]update{nil}
	for _, op := range ops {
		switch u := op.(type) {
		case update:
			segs[len(segs)-1] = append(segs[len(segs)-1], u)
		default:
			segs = append(segs, nil)
		}
	}
	perPeer := map[string]int{}
	perPeerPos := map[string]string{}
	for _, seg := range segs {
		seen := map[string]bool{}
		for _, u := range seg {
			if u.to.Inst == ji.Inst || seen[u.to.FQ] {
				continue
			}
			seen[u.to.FQ] = true
			perPeer[u.to.FQ]++
			if _, ok := perPeerPos[u.to.FQ]; !ok {
				perPeerPos[u.to.FQ] = u.pos
			}
		}
	}
	var peers []string
	for fq, n := range perPeer {
		if n >= 2 {
			peers = append(peers, fq)
		}
	}
	sort.Strings(peers)
	for _, fq := range peers {
		j.PingPongs = append(j.PingPongs, PingPong{Pos: perPeerPos[fq], Peer: fq, Rounds: perPeer[fq]})
	}
}

// roundDepth is the acked-round-trip depth of one statement's updates: a
// statement completes at its delivery ack, so any update costs one round.
func roundDepth(us []update) int {
	if len(us) == 0 {
		return 0
	}
	return 1
}

// parShape accounts one par statement: coalescing savings (arms updating the
// same peer pack into per-destination envelopes) and fan-out sites (arms
// updating distinct peers cannot).
func (m *Model) parShape(j *Junction, pos string, armPeers []map[string]float64) {
	perPeerArms := map[string]int{}
	perPeerMin := map[string]float64{}
	armsSending := 0
	for _, peers := range armPeers {
		if len(peers) > 0 {
			armsSending++
		}
		for fq, w := range peers {
			perPeerArms[fq]++
			if cur, ok := perPeerMin[fq]; !ok || w < cur {
				perPeerMin[fq] = w
			}
		}
	}
	var distinct []string
	for fq := range perPeerArms {
		distinct = append(distinct, fq)
		if k := perPeerArms[fq]; k > 1 {
			j.coalesced += float64(k-1) * perPeerMin[fq]
		}
	}
	if armsSending >= 2 && len(distinct) >= 2 {
		sort.Strings(distinct)
		j.Fanouts = append(j.Fanouts, Fanout{Pos: pos, Arms: armsSending, Peers: distinct})
	}
}

// bodyReads collects remote-qualified reads of a body formula (wait/verify/
// if/case conditions): in-process they are fine, across a bridge they
// evaluate Unknown.
func (m *Model) bodyReads(j *Junction, pos string, f formula.Formula) {
	if f == nil {
		return
	}
	rs := plan.FormulaReadSet(j.Info, f)
	for _, o := range rs.Origins {
		if !o.Remote || o.Junction == "" {
			continue
		}
		j.BodyReads = append(j.BodyReads, GuardRead{
			Pos:    pos,
			Origin: o,
			Target: m.resolveQualifier(o.Junction),
		})
	}
}

// linkGuardEdges adds the zero-traffic colocation edges for guards that read
// another instance's table or liveness in-process.
func (m *Model) linkGuardEdges() {
	for _, fq := range m.Order {
		j := m.Junctions[fq]
		for _, gr := range j.GuardReads {
			if gr.Target == nil || gr.Target.Inst == j.Info.Inst {
				continue
			}
			e := j.out[gr.Target.FQ]
			if e == nil {
				e = &Edge{From: fq, To: gr.Target.FQ}
				j.out[gr.Target.FQ] = e
			}
			e.GuardRead = true
		}
	}
}

// propagateActivation seeds invoked roots at one firing per drive unit and
// propagates guard-triggering update weights through the edge matrix with a
// fixed number of Jacobi sweeps (deterministic, cycle-safe via the cap).
func (m *Model) propagateActivation() {
	act := map[string]float64{}
	for _, fq := range m.Order {
		j := m.Junctions[fq]
		if j.Guard == GuardInvoked {
			act[fq] = 1
			continue
		}
		if len(j.guardProps) == 0 && len(j.GuardReads) == 0 {
			// A guard over no state (e.g. true) is self-driving.
			act[fq] = 1
		}
	}
	roots := map[string]float64{}
	for fq, a := range act {
		roots[fq] = a
	}
	for sweep := 0; sweep < activationSweeps; sweep++ {
		next := map[string]float64{}
		for fq, a := range roots {
			next[fq] = a
		}
		for _, fq := range m.Order {
			j := m.Junctions[fq]
			for to, e := range j.out {
				if e.guardKey <= 0 {
					continue
				}
				trig := e.guardKey
				if trig > 1 {
					trig = 1 // one firing consumes at most one trigger
				}
				next[to] += act[fq] * trig
			}
		}
		for fq, a := range next {
			if a > activationCap {
				next[fq] = activationCap
			}
		}
		act = next
	}
	for fq, a := range act {
		m.Junctions[fq].Activation = a
	}
}

// Report serializes the model priced under a placement (nil = co-located).
// An edge crosses when its two instances map to different locations; guard
// reads do not move bytes but are flagged per-edge for the colocation
// constraint they impose.
func (m *Model) Report(placement map[string]string) *analysis.CostReport {
	rep := &analysis.CostReport{Placement: placement}
	for _, fq := range m.Order {
		j := m.Junctions[fq]
		rep.Junctions = append(rep.Junctions, analysis.JunctionCost{
			FQ:               fq,
			Guard:            j.Guard,
			Activation:       round3(j.Activation),
			UpdatesPerFiring: round3(j.Updates),
			FramesPerFiring:  round3(j.Frames),
			RoundsPerFiring:  j.Rounds,
		})
	}
	for _, e := range m.Edges {
		cross := m.crossEdge(e, placement)
		if cross {
			rep.CrossUpdatesPerDrive += e.PerDrive
		}
		rep.Edges = append(rep.Edges, analysis.EdgeCost{
			From:             e.From,
			To:               e.To,
			UpdatesPerFiring: round3(e.Updates),
			UpdatesPerDrive:  round3(e.PerDrive),
			GuardRead:        e.GuardRead,
			Cross:            cross,
		})
	}
	rep.CrossUpdatesPerDrive = round3(rep.CrossUpdatesPerDrive)
	return rep
}

// crossEdge reports whether an edge's endpoints live at different locations
// under the placement.
func (m *Model) crossEdge(e *Edge, placement map[string]string) bool {
	from, to := m.Junctions[e.From], m.Junctions[e.To]
	if from == nil || to == nil {
		return false
	}
	return placement[from.Info.Inst] != placement[to.Info.Inst]
}

// round3 trims float noise so reports compare and serialize stably.
func round3(v float64) float64 {
	r := float64(int64(v*1000+0.5)) / 1000
	if v < 0 {
		r = float64(int64(v*1000-0.5)) / 1000
	}
	return r
}
