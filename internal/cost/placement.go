// Greedy placement optimization over instance→location assignments: price
// the cross-location update traffic of the model's edge matrix under a
// placement, then move unpinned instances one at a time to whichever
// location cuts the most predicted traffic, until no move helps.
//
// Guard reads weigh in as hard colocation pressure: a guard that reads
// another instance's table in-process stops evaluating definitely true the
// moment a bridge separates them, so splitting such a pair is priced far
// above any bandwidth the split could save.
package cost

import (
	"sort"

	"csaw/internal/analysis"
)

// guardSplitPenalty prices separating a guard-read pair. It only needs to
// dominate realistic per-drive update totals (activations cap at 64), so any
// bandwidth saving loses to a broken guard.
const guardSplitPenalty = 1e6

// CrossTraffic totals the location-crossing updates per drive unit of the
// model under a placement. Nil placement means co-located: zero.
func CrossTraffic(m *Model, placement map[string]string) float64 {
	total := 0.0
	for _, e := range m.Edges {
		if m.crossEdge(e, placement) {
			total += e.PerDrive
		}
	}
	return total
}

// objective is CrossTraffic plus the guard-split penalty per guard-read edge
// forced across locations — what the optimizer actually minimizes.
func objective(m *Model, placement map[string]string) float64 {
	total := CrossTraffic(m, placement)
	for _, e := range m.Edges {
		if e.GuardRead && m.crossEdge(e, placement) {
			total += guardSplitPenalty
		}
	}
	return total
}

// Optimize greedily relocates unpinned instances across the location set
// until no single move lowers the objective. It returns the final placement
// and the applied moves in order, each Delta the change in plain
// cross-location updates per drive (negative = saved). The input placement
// is not mutated; locations defaults to the distinct locations present in
// it. Pinned instances never move.
func Optimize(m *Model, placement map[string]string, pins map[string]bool, locations []string) (map[string]string, []analysis.PlacementMove) {
	cur := map[string]string{}
	for inst, loc := range placement {
		cur[inst] = loc
	}
	if len(locations) == 0 {
		seen := map[string]bool{}
		for _, loc := range cur {
			if !seen[loc] {
				seen[loc] = true
				locations = append(locations, loc)
			}
		}
	}
	locs := append([]string(nil), locations...)
	sort.Strings(locs)
	var insts []string
	for _, inst := range m.Ctx.Prog.InstanceNames() {
		if !pins[inst] {
			insts = append(insts, inst)
		}
	}
	sort.Strings(insts)

	var moves []analysis.PlacementMove
	for iter := 0; iter < 100; iter++ {
		base := objective(m, cur)
		bestObj := base
		var bestInst, bestLoc string
		for _, inst := range insts {
			from := cur[inst]
			for _, loc := range locs {
				if loc == from {
					continue
				}
				cur[inst] = loc
				if obj := objective(m, cur); obj < bestObj {
					bestObj, bestInst, bestLoc = obj, inst, loc
				}
				cur[inst] = from
			}
		}
		if bestInst == "" {
			break
		}
		before := CrossTraffic(m, cur)
		move := analysis.PlacementMove{Instance: bestInst, From: cur[bestInst], To: bestLoc}
		cur[bestInst] = bestLoc
		move.Delta = round3(CrossTraffic(m, cur) - before)
		moves = append(moves, move)
	}
	return cur, moves
}
