// Package minisuricata is a from-scratch network-security-monitoring engine
// standing in for the Suricata evaluation target (paper §2): it implements
// the graph-based packet-handling abstraction ("reminiscent of Click") —
// packet analysis and threat-detection tasks interconnected in a processing
// graph — plus a 5-tuple flow table, signature rules, engine-state
// snapshot/restore for the checkpoint/fail-over architectures, and the
// 5-tuple hashing used for flow-level packet steering across back-end
// engines.
package minisuricata

import (
	"bytes"
	"errors"
	"fmt"

	"csaw/internal/serial"
	"csaw/internal/workload"
)

// Verdict is the outcome of processing one packet.
type Verdict uint8

// Verdicts.
const (
	// Pass lets the packet through.
	Pass Verdict = iota
	// Alert flags the packet and lets it through.
	Alert
	// Drop discards the packet.
	Drop
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Alert:
		return "alert"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("verdict(%d)", v)
	}
}

// Context carries per-packet state through the graph.
type Context struct {
	Engine  *Engine
	Flow    *FlowState
	Alerts  []string
	verdict Verdict
}

// Node is one vertex of the processing graph. Process returns the output
// port to route the packet to; port -1 terminates the pipeline with the
// context's current verdict.
type Node interface {
	Name() string
	Process(ctx *Context, p *workload.Packet) int
}

// edge connects a node's output port to a successor.
type edge struct {
	from string
	port int
	to   string
}

// Graph is the Click-like packet-processing graph: named nodes and
// port-indexed edges.
type Graph struct {
	nodes map[string]Node
	order []string
	edges map[string]map[int]string
	entry string
}

// NewGraph creates an empty graph.
func NewGraph() *Graph {
	return &Graph{nodes: map[string]Node{}, edges: map[string]map[int]string{}}
}

// AddNode registers a node; the first node added is the entry point.
func (g *Graph) AddNode(n Node) *Graph {
	name := n.Name()
	if _, dup := g.nodes[name]; !dup {
		g.order = append(g.order, name)
	}
	g.nodes[name] = n
	if g.entry == "" {
		g.entry = name
	}
	return g
}

// Connect wires from's output port to the node named to.
func (g *Graph) Connect(from string, port int, to string) *Graph {
	m, ok := g.edges[from]
	if !ok {
		m = map[int]string{}
		g.edges[from] = m
	}
	m[port] = to
	return g
}

// Validate checks the graph: entry exists, every edge endpoint exists, and
// the graph is acyclic (packets cannot loop).
func (g *Graph) Validate() error {
	if g.entry == "" {
		return errors.New("minisuricata: empty graph")
	}
	for from, ports := range g.edges {
		if _, ok := g.nodes[from]; !ok {
			return fmt.Errorf("minisuricata: edge from unknown node %q", from)
		}
		for port, to := range ports {
			if _, ok := g.nodes[to]; !ok {
				return fmt.Errorf("minisuricata: edge %s:%d to unknown node %q", from, port, to)
			}
		}
	}
	// Cycle check via DFS over all ports.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var dfs func(string) error
	dfs = func(n string) error {
		color[n] = grey
		for _, to := range g.edges[n] {
			switch color[to] {
			case grey:
				return fmt.Errorf("minisuricata: cycle through %q", to)
			case white:
				if err := dfs(to); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for _, n := range g.order {
		if color[n] == white {
			if err := dfs(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// FlowState is the tracked state of one 5-tuple flow.
type FlowState struct {
	Key     string
	Packets uint64
	Bytes   uint64
	Alerts  uint64
}

// Rule is one detection signature: a payload substring with an identifier.
type Rule struct {
	ID      int
	Pattern string
	Msg     string
}

// Stats aggregates engine counters.
type Stats struct {
	Packets uint64
	Bytes   uint64
	Alerts  uint64
	Dropped uint64
}

// engineImage is the serialized engine state for checkpointing.
type engineImage struct {
	Flows []FlowState
	Stats Stats
}

// Engine is one single-threaded processing engine (one Suricata worker).
type Engine struct {
	graph *Graph
	rules []Rule
	flows map[string]*FlowState
	stats Stats
}

// NewEngine builds an engine over the given graph and rule set. The graph
// must validate.
func NewEngine(g *Graph, rules []Rule) (*Engine, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Engine{graph: g, rules: rules, flows: map[string]*FlowState{}}, nil
}

// DefaultGraph builds the standard decode → flow → detect → output chain.
func DefaultGraph() *Graph {
	g := NewGraph()
	g.AddNode(&DecodeNode{}).AddNode(&FlowNode{}).AddNode(&DetectNode{}).AddNode(&OutputNode{})
	g.Connect("decode", 0, "flow")
	g.Connect("flow", 0, "detect")
	g.Connect("detect", 0, "output")
	return g
}

// DefaultRules match the synthetic trace's suspicious payloads.
func DefaultRules() []Rule {
	return []Rule{
		{ID: 1, Pattern: "EVIL", Msg: "synthetic malware beacon"},
		{ID: 2, Pattern: "/etc/passwd", Msg: "credential file access"},
	}
}

// NewDefaultEngine is the common construction.
func NewDefaultEngine() *Engine {
	e, err := NewEngine(DefaultGraph(), DefaultRules())
	if err != nil {
		panic(err) // DefaultGraph is statically valid
	}
	return e
}

// ProcessPacket runs one packet through the graph and returns its verdict.
func (e *Engine) ProcessPacket(p *workload.Packet) Verdict {
	ctx := &Context{Engine: e}
	cur := e.graph.entry
	for {
		node := e.graph.nodes[cur]
		port := node.Process(ctx, p)
		if port < 0 {
			break
		}
		next, ok := e.graph.edges[cur][port]
		if !ok {
			break
		}
		cur = next
	}
	e.stats.Packets++
	e.stats.Bytes += uint64(p.Len)
	switch ctx.verdict {
	case Alert:
		e.stats.Alerts++
	case Drop:
		e.stats.Dropped++
	}
	return ctx.verdict
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Flows returns the number of tracked flows.
func (e *Engine) Flows() int { return len(e.flows) }

// FlowStats returns a copy of one flow's state.
func (e *Engine) FlowStats(key string) (FlowState, bool) {
	f, ok := e.flows[key]
	if !ok {
		return FlowState{}, false
	}
	return *f, true
}

// Snapshot serializes the engine state (flow table + counters) — the
// continuous-checkpoint primitive of the availability+diagnostics use-case
// (paper §2).
func (e *Engine) Snapshot() ([]byte, error) {
	img := engineImage{Stats: e.stats}
	img.Flows = make([]FlowState, 0, len(e.flows))
	for _, f := range e.flows {
		img.Flows = append(img.Flows, *f)
	}
	return serial.Snapshot.Marshal(img)
}

// Restore replaces the engine state from a snapshot.
func (e *Engine) Restore(data []byte) error {
	var img engineImage
	if err := serial.Snapshot.Unmarshal(data, &img); err != nil {
		return err
	}
	e.stats = img.Stats
	e.flows = make(map[string]*FlowState, len(img.Flows))
	for i := range img.Flows {
		f := img.Flows[i]
		e.flows[f.Key] = &f
	}
	return nil
}

// ShardFor hashes a packet's 5-tuple onto one of n back-ends — the
// packet-steering policy layer of the Suricata sharding reconfiguration
// (paper §10.1: "The 5-tuple of each packet ... is hashed to determine which
// of four back-end Suricata instances should process it").
func ShardFor(p *workload.Packet, n int) int {
	if n <= 0 {
		return 0
	}
	return int(workload.Djb2(p.Flow.FiveTupleKey())) % n
}

// --- standard nodes ------------------------------------------------------------

// DecodeNode validates basic packet well-formedness.
type DecodeNode struct{}

// Name implements Node.
func (*DecodeNode) Name() string { return "decode" }

// Process implements Node.
func (*DecodeNode) Process(ctx *Context, p *workload.Packet) int {
	if p.Len <= 0 || p.Len > 65535 {
		ctx.verdict = Drop
		return -1
	}
	return 0
}

// FlowNode tracks per-5-tuple flow state.
type FlowNode struct{}

// Name implements Node.
func (*FlowNode) Name() string { return "flow" }

// Process implements Node.
func (*FlowNode) Process(ctx *Context, p *workload.Packet) int {
	key := p.Flow.FiveTupleKey()
	f, ok := ctx.Engine.flows[key]
	if !ok {
		f = &FlowState{Key: key}
		ctx.Engine.flows[key] = f
	}
	f.Packets++
	f.Bytes += uint64(p.Len)
	ctx.Flow = f
	return 0
}

// DetectNode matches the rule set against packet payloads.
type DetectNode struct{}

// Name implements Node.
func (*DetectNode) Name() string { return "detect" }

// Process implements Node.
func (*DetectNode) Process(ctx *Context, p *workload.Packet) int {
	for _, r := range ctx.Engine.rules {
		if bytes.Contains(p.Payload, []byte(r.Pattern)) {
			ctx.Alerts = append(ctx.Alerts, r.Msg)
			ctx.verdict = Alert
			if ctx.Flow != nil {
				ctx.Flow.Alerts++
			}
		}
	}
	return 0
}

// OutputNode terminates the pipeline.
type OutputNode struct{}

// Name implements Node.
func (*OutputNode) Name() string { return "output" }

// Process implements Node.
func (*OutputNode) Process(ctx *Context, p *workload.Packet) int { return -1 }
