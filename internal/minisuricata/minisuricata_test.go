package minisuricata

import (
	"testing"

	"csaw/internal/workload"
)

func pkt(payload string) *workload.Packet {
	return &workload.Packet{
		Flow: workload.Flow{SrcIP: 1, DstIP: 2, SrcPort: 1234, DstPort: 80, Proto: 6},
		Len:  100, Payload: []byte(payload),
	}
}

func TestBenignPacketPasses(t *testing.T) {
	e := NewDefaultEngine()
	if v := e.ProcessPacket(pkt("GET /index.html")); v != Pass {
		t.Fatalf("verdict = %v", v)
	}
	st := e.Stats()
	if st.Packets != 1 || st.Alerts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMaliciousPacketAlerts(t *testing.T) {
	e := NewDefaultEngine()
	if v := e.ProcessPacket(pkt("GET /etc/passwd EVIL")); v != Alert {
		t.Fatalf("verdict = %v", v)
	}
	if e.Stats().Alerts != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
	// The payload matches both rules, so the flow records one alert per
	// matching rule.
	f, ok := e.FlowStats(pkt("").Flow.FiveTupleKey())
	if !ok || f.Alerts != 2 {
		t.Fatalf("flow = %+v %v", f, ok)
	}
}

func TestMalformedPacketDropped(t *testing.T) {
	e := NewDefaultEngine()
	p := pkt("x")
	p.Len = 0
	if v := e.ProcessPacket(p); v != Drop {
		t.Fatalf("verdict = %v", v)
	}
	if e.Stats().Dropped != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
}

func TestFlowTracking(t *testing.T) {
	e := NewDefaultEngine()
	for i := 0; i < 10; i++ {
		e.ProcessPacket(pkt("hello"))
	}
	other := pkt("hello")
	other.Flow.SrcPort = 9999
	e.ProcessPacket(other)

	if e.Flows() != 2 {
		t.Fatalf("flows = %d", e.Flows())
	}
	f, ok := e.FlowStats(pkt("").Flow.FiveTupleKey())
	if !ok || f.Packets != 10 || f.Bytes != 1000 {
		t.Fatalf("flow = %+v", f)
	}
}

func TestSnapshotRestore(t *testing.T) {
	e := NewDefaultEngine()
	for i := 0; i < 20; i++ {
		e.ProcessPacket(pkt("traffic"))
	}
	e.ProcessPacket(pkt("EVIL"))
	img, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Fresh engine restores to identical state — the fail-over replica.
	replica := NewDefaultEngine()
	if err := replica.Restore(img); err != nil {
		t.Fatal(err)
	}
	if replica.Stats() != e.Stats() {
		t.Fatalf("stats %+v != %+v", replica.Stats(), e.Stats())
	}
	if replica.Flows() != e.Flows() {
		t.Fatalf("flows %d != %d", replica.Flows(), e.Flows())
	}
	orig, _ := e.FlowStats(pkt("").Flow.FiveTupleKey())
	rest, ok := replica.FlowStats(pkt("").Flow.FiveTupleKey())
	if !ok || rest != orig {
		t.Fatalf("flow state %+v != %+v", rest, orig)
	}
	// The replica keeps processing from the restored state.
	replica.ProcessPacket(pkt("more"))
	if replica.Stats().Packets != e.Stats().Packets+1 {
		t.Fatal("replica did not continue from checkpoint")
	}
}

func TestRestoreCorrupt(t *testing.T) {
	e := NewDefaultEngine()
	if err := e.Restore([]byte{9, 9, 9}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestGraphValidation(t *testing.T) {
	// Edge to unknown node.
	g := NewGraph()
	g.AddNode(&DecodeNode{})
	g.Connect("decode", 0, "ghost")
	if err := g.Validate(); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	// Cycle.
	g2 := NewGraph()
	g2.AddNode(&DecodeNode{}).AddNode(&FlowNode{})
	g2.Connect("decode", 0, "flow")
	g2.Connect("flow", 0, "decode")
	if err := g2.Validate(); err == nil {
		t.Fatal("cyclic graph accepted")
	}
	// Empty.
	if err := NewGraph().Validate(); err == nil {
		t.Fatal("empty graph accepted")
	}
	// Default graph is valid.
	if err := DefaultGraph().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomGraphRouting(t *testing.T) {
	// A custom branch: detect routes alerts to a quarantine node on port 1.
	g := NewGraph()
	g.AddNode(&DecodeNode{}).AddNode(&FlowNode{}).AddNode(&branchDetect{}).AddNode(&OutputNode{}).AddNode(&quarantine{})
	g.Connect("decode", 0, "flow")
	g.Connect("flow", 0, "branch")
	g.Connect("branch", 0, "output")
	g.Connect("branch", 1, "quarantine")
	e, err := NewEngine(g, DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if v := e.ProcessPacket(pkt("EVIL payload")); v != Drop {
		t.Fatalf("quarantined packet verdict = %v", v)
	}
	if v := e.ProcessPacket(pkt("fine")); v != Pass {
		t.Fatalf("benign verdict = %v", v)
	}
}

type branchDetect struct{ DetectNode }

func (*branchDetect) Name() string { return "branch" }

func (b *branchDetect) Process(ctx *Context, p *workload.Packet) int {
	b.DetectNode.Process(ctx, p)
	if ctx.verdict == Alert {
		return 1
	}
	return 0
}

type quarantine struct{}

func (*quarantine) Name() string { return "quarantine" }
func (*quarantine) Process(ctx *Context, p *workload.Packet) int {
	ctx.verdict = Drop
	return -1
}

func TestShardForStability(t *testing.T) {
	p := pkt("x")
	first := ShardFor(p, 4)
	for i := 0; i < 10; i++ {
		if ShardFor(p, 4) != first {
			t.Fatal("shard assignment not stable")
		}
	}
	if first < 0 || first >= 4 {
		t.Fatalf("shard %d out of range", first)
	}
	if ShardFor(p, 0) != 0 {
		t.Fatal("n=0 should map to 0")
	}
}

func TestShardDistribution(t *testing.T) {
	tr := workload.NewFlowTrace(workload.FlowTraceConfig{Flows: 400, MeanPackets: 2, Seed: 11})
	counts := make([]int, 4)
	total := 0
	for {
		p, ok := tr.Next()
		if !ok {
			break
		}
		counts[ShardFor(&p, 4)]++
		total++
	}
	for i, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("shard %d got %.2f of traffic: %v", i, frac, counts)
		}
	}
}

func TestFullTraceRun(t *testing.T) {
	e := NewDefaultEngine()
	tr := workload.NewFlowTrace(workload.FlowTraceConfig{Flows: 100, MeanPackets: 10, Seed: 3, SuspiciousFraction: 0.2})
	total := tr.TotalPackets()
	alerts := 0
	for {
		p, ok := tr.Next()
		if !ok {
			break
		}
		if e.ProcessPacket(&p) == Alert {
			alerts++
		}
	}
	st := e.Stats()
	if st.Packets != uint64(total) {
		t.Fatalf("processed %d of %d", st.Packets, total)
	}
	if alerts == 0 || st.Alerts != uint64(alerts) {
		t.Fatalf("alerts = %d / stats %d", alerts, st.Alerts)
	}
	if e.Flows() == 0 || e.Flows() > 100 {
		t.Fatalf("flows = %d", e.Flows())
	}
}

func BenchmarkProcessPacket(b *testing.B) {
	e := NewDefaultEngine()
	p := pkt("GET /index.html HTTP/1.1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ProcessPacket(p)
	}
}
