package workload

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDjb2KnownValues(t *testing.T) {
	// Reference values computed with the canonical djb2 (hash*33 + c).
	if got := Djb2(""); got != 5381 {
		t.Errorf("djb2(\"\") = %d", got)
	}
	if got := Djb2("a"); got != 5381*33+97 {
		t.Errorf("djb2(\"a\") = %d", got)
	}
	if Djb2("key:000001") == Djb2("key:000002") {
		t.Error("trivially colliding hash")
	}
}

func TestKVStreamDeterminism(t *testing.T) {
	cfg := KVConfig{Keys: 100, ReadFraction: 0.5, Seed: 9}
	a, b := NewKVStream(cfg), NewKVStream(cfg)
	for i := 0; i < 100; i++ {
		x, y := a.Next(), b.Next()
		if x.Get != y.Get || x.Key != y.Key {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestKVStreamReadFraction(t *testing.T) {
	s := NewKVStream(KVConfig{Keys: 100, ReadFraction: 0.9, Seed: 1})
	reads := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if s.Next().Get {
			reads++
		}
	}
	if reads < n*80/100 || reads > n*97/100 {
		t.Fatalf("reads = %d/%d, want ≈90%%", reads, n)
	}
}

// TestKVStreamSkew verifies the 90/10 skew of the caching experiment: with
// HotProbability 0.9 and HotFraction 0.1, ~90% of requests hit the hot 10%.
func TestKVStreamSkew(t *testing.T) {
	s := NewKVStream(KVConfig{Keys: 1000, ReadFraction: 1, HotFraction: 0.1, HotProbability: 0.9, Seed: 2})
	hot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		op := s.Next()
		var idx int
		if _, err := parseKey(op.Key, &idx); err != nil {
			t.Fatal(err)
		}
		if idx < 100 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %.3f, want ≈0.9", frac)
	}
}

func parseKey(k string, idx *int) (int, error) {
	var n int
	_, err := sscanf(k, idx)
	n = *idx
	return n, err
}

func sscanf(k string, idx *int) (int, error) {
	s := strings.TrimPrefix(k, "key:")
	v := 0
	for _, c := range s {
		v = v*10 + int(c-'0')
	}
	*idx = v
	return 1, nil
}

// TestKVStreamWeights verifies that weighted key classes reproduce the
// uneven sharding workload: class frequencies must track the weights.
func TestKVStreamWeights(t *testing.T) {
	weights := []float64{4, 3, 2, 1}
	s := NewKVStream(KVConfig{Keys: 1000, KeyWeights: weights, Seed: 3})
	counts := make([]int, 4)
	const n = 20000
	for i := 0; i < n; i++ {
		var idx int
		if _, err := sscanf(s.Next().Key, &idx); err != nil {
			t.Fatal(err)
		}
		counts[idx%4]++
	}
	// Expect roughly 40/30/20/10.
	for c, want := range []float64{0.4, 0.3, 0.2, 0.1} {
		got := float64(counts[c]) / n
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("class %d frequency %.3f, want ≈%.2f", c, got, want)
		}
	}
}

func TestSizeClasses(t *testing.T) {
	classes := PaperSizeClasses()
	if len(classes) != 3 {
		t.Fatalf("classes = %d", len(classes))
	}
	rng := rand.New(rand.NewSource(4))
	for _, c := range classes {
		for i := 0; i < 50; i++ {
			v := SizedValue(rng, c)
			if len(v) < c.MinBytes || len(v) > c.MaxBytes {
				t.Fatalf("class %s produced %d bytes", c.Name, len(v))
			}
		}
	}
}

func TestFlowTrace(t *testing.T) {
	tr := NewFlowTrace(FlowTraceConfig{Flows: 50, MeanPackets: 20, Seed: 5, SuspiciousFraction: 0.1})
	total := tr.TotalPackets()
	if total <= 0 {
		t.Fatal("empty trace")
	}
	seen := 0
	flows := map[string]bool{}
	sus := 0
	for {
		p, ok := tr.Next()
		if !ok {
			break
		}
		seen++
		flows[p.Flow.FiveTupleKey()] = true
		if strings.Contains(string(p.Payload), "EVIL") {
			sus++
		}
		if p.Len < 64 || p.Len > 1464 {
			t.Fatalf("packet len %d", p.Len)
		}
		if seen > total {
			t.Fatal("trace emitted more packets than TotalPackets")
		}
	}
	if seen != total {
		t.Fatalf("emitted %d, TotalPackets said %d", seen, total)
	}
	if len(flows) == 0 || len(flows) > 50 {
		t.Fatalf("flows = %d", len(flows))
	}
	if sus == 0 {
		t.Fatal("no suspicious packets generated")
	}
}

func TestFlowTraceDeterminism(t *testing.T) {
	cfg := FlowTraceConfig{Flows: 10, MeanPackets: 5, Seed: 6}
	a, b := NewFlowTrace(cfg), NewFlowTrace(cfg)
	for {
		pa, oka := a.Next()
		pb, okb := b.Next()
		if oka != okb {
			t.Fatal("traces diverged in length")
		}
		if !oka {
			break
		}
		if pa.Flow != pb.Flow || pa.Len != pb.Len {
			t.Fatal("traces diverged in content")
		}
	}
}

func TestFileSizeSweeps(t *testing.T) {
	small := SmallFileSizes()
	large := LargeFileSizes()
	if len(small) == 0 || len(large) == 0 {
		t.Fatal("empty sweeps")
	}
	for i := 1; i < len(small); i++ {
		if small[i] <= small[i-1] {
			t.Fatal("small sizes not increasing")
		}
	}
	if large[0] <= small[len(small)-1]/8 {
		t.Fatal("large sweep should start above the small sweep")
	}
}
