// Package workload generates the reference workloads of the paper's
// evaluation (§10.1): redis-benchmark-style key/value request streams
// (uniform and 90/10-skewed reads, the skew modelling the memcached/Twitter
// cache studies the paper cites), object-size distributions for size-based
// sharding, 5-tuple network flow traces standing in for bigFlows.pcap, and
// the file-size sweeps of the cURL experiments.
package workload

import (
	"fmt"
	"math/rand"
)

// Djb2 is the djb2 string hash the paper uses for key-based sharding (§10.1,
// citing Ozan Yigit's hash collection).
func Djb2(s string) uint32 {
	var h uint32 = 5381
	for i := 0; i < len(s); i++ {
		h = h*33 + uint32(s[i])
	}
	return h
}

// Op is a single KV operation.
type Op struct {
	Get   bool
	Key   string
	Value []byte
}

// KVConfig parameterizes a KV request stream.
type KVConfig struct {
	// Keys is the size of the keyspace.
	Keys int
	// ReadFraction is the fraction of GETs (rest are SETs).
	ReadFraction float64
	// HotFraction and HotProbability implement the paper's skew: with
	// probability HotProbability a request targets the hot HotFraction of
	// the keyspace (90% of requests to 10% of keys in §10.1).
	HotFraction    float64
	HotProbability float64
	// ValueSize is the SET payload size in bytes.
	ValueSize int
	// KeyWeights optionally skews key-class frequencies for the uneven
	// sharding workloads; nil means uniform.
	KeyWeights []float64
	// Seed makes the stream deterministic.
	Seed int64
}

// KVStream produces a deterministic stream of KV operations.
type KVStream struct {
	cfg     KVConfig
	rng     *rand.Rand
	cumW    []float64
	hotKeys int
	value   []byte
}

// NewKVStream builds a stream from the configuration.
func NewKVStream(cfg KVConfig) *KVStream {
	if cfg.Keys <= 0 {
		cfg.Keys = 10000
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 64
	}
	s := &KVStream{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		hotKeys: int(float64(cfg.Keys) * cfg.HotFraction),
	}
	if s.hotKeys <= 0 {
		s.hotKeys = 1
	}
	if len(cfg.KeyWeights) > 0 {
		total := 0.0
		for _, w := range cfg.KeyWeights {
			total += w
		}
		acc := 0.0
		for _, w := range cfg.KeyWeights {
			acc += w / total
			s.cumW = append(s.cumW, acc)
		}
	}
	s.value = make([]byte, cfg.ValueSize)
	for i := range s.value {
		s.value[i] = byte('a' + i%26)
	}
	return s
}

// Next produces the next operation.
func (s *KVStream) Next() Op {
	var idx int
	switch {
	case len(s.cumW) > 0:
		// Weighted key classes: pick a class, then a key within it. Keys of
		// class c are those with k % len(weights) == c, so class membership
		// survives hashing.
		u := s.rng.Float64()
		class := len(s.cumW) - 1
		for i, c := range s.cumW {
			if u <= c {
				class = i
				break
			}
		}
		n := len(s.cumW)
		idx = class + n*s.rng.Intn(s.cfg.Keys/n)
	case s.cfg.HotProbability > 0 && s.rng.Float64() < s.cfg.HotProbability:
		idx = s.rng.Intn(s.hotKeys)
	default:
		idx = s.rng.Intn(s.cfg.Keys)
	}
	key := fmt.Sprintf("key:%06d", idx)
	if s.rng.Float64() < s.cfg.ReadFraction {
		return Op{Get: true, Key: key}
	}
	return Op{Key: key, Value: s.value}
}

// SizeClass describes one object-size class for size-aware sharding (the
// paper quantizes sizes into 0–4 KB, 4–64 KB and >64 KB, §5.2).
type SizeClass struct {
	Name     string
	MinBytes int
	MaxBytes int
}

// PaperSizeClasses are the three classes from §5.2 plus the paper's implicit
// fourth shard for hash-based overflow, giving the 4-way split used in the
// Fig. 26c experiment.
func PaperSizeClasses() []SizeClass {
	return []SizeClass{
		{Name: "0-4KB", MinBytes: 1, MaxBytes: 4 << 10},
		{Name: "4-64KB", MinBytes: 4<<10 + 1, MaxBytes: 64 << 10},
		{Name: ">64KB", MinBytes: 64<<10 + 1, MaxBytes: 256 << 10},
	}
}

// SizedValue generates a value within the class using the stream's RNG
// source.
func SizedValue(rng *rand.Rand, c SizeClass) []byte {
	n := c.MinBytes
	if c.MaxBytes > c.MinBytes {
		n += rng.Intn(c.MaxBytes - c.MinBytes)
	}
	b := make([]byte, n)
	for i := 0; i < len(b); i += 97 {
		b[i] = byte(i)
	}
	return b
}

// Flow is one network 5-tuple (paper §2, flow-level resourcing).
type Flow struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
	Packets          int
	Bytes            int
}

// FiveTupleKey renders the canonical flow key used for hashing.
func (f Flow) FiveTupleKey() string {
	return fmt.Sprintf("%d:%d-%d:%d/%d", f.SrcIP, f.SrcPort, f.DstIP, f.DstPort, f.Proto)
}

// Packet is one packet of a flow trace.
type Packet struct {
	Flow    Flow
	Len     int
	Payload []byte
}

// FlowTraceConfig parameterizes the synthetic substitute for bigFlows.pcap:
// many flows from different applications with heavy-tailed sizes.
type FlowTraceConfig struct {
	Flows       int
	MeanPackets int
	Seed        int64
	// SuspiciousFraction of flows carry a payload token that the detection
	// rules match.
	SuspiciousFraction float64
}

// FlowTrace is a deterministic packet generator.
type FlowTrace struct {
	flows  []Flow
	sus    []bool
	rng    *rand.Rand
	remain []int
	alive  []int
}

// NewFlowTrace creates the trace. Packet counts per flow follow a geometric
// (heavy-tailed) distribution around MeanPackets.
func NewFlowTrace(cfg FlowTraceConfig) *FlowTrace {
	if cfg.Flows <= 0 {
		cfg.Flows = 100
	}
	if cfg.MeanPackets <= 0 {
		cfg.MeanPackets = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &FlowTrace{rng: rng}
	for i := 0; i < cfg.Flows; i++ {
		f := Flow{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(1024 + rng.Intn(60000)),
			DstPort: []uint16{80, 443, 53, 22, 8080}[rng.Intn(5)],
			Proto:   []uint8{6, 17}[rng.Intn(2)],
		}
		n := 1 + int(rng.ExpFloat64()*float64(cfg.MeanPackets))
		t.flows = append(t.flows, f)
		t.sus = append(t.sus, rng.Float64() < cfg.SuspiciousFraction)
		t.remain = append(t.remain, n)
		t.alive = append(t.alive, i)
	}
	return t
}

// Next emits the next packet, interleaving live flows; ok is false when the
// trace is exhausted.
func (t *FlowTrace) Next() (Packet, bool) {
	for len(t.alive) > 0 {
		i := t.rng.Intn(len(t.alive))
		fi := t.alive[i]
		if t.remain[fi] <= 0 {
			t.alive[i] = t.alive[len(t.alive)-1]
			t.alive = t.alive[:len(t.alive)-1]
			continue
		}
		t.remain[fi]--
		p := Packet{
			Flow: t.flows[fi],
			Len:  64 + t.rng.Intn(1400),
		}
		if t.sus[fi] {
			p.Payload = []byte("GET /etc/passwd EVIL")
		} else {
			p.Payload = []byte("GET /index.html HTTP/1.1")
		}
		return p, true
	}
	return Packet{}, false
}

// TotalPackets returns the number of packets the trace will emit in total.
func (t *FlowTrace) TotalPackets() int {
	n := 0
	for _, r := range t.remain {
		n += r
	}
	return n
}

// SmallFileSizes are the Fig. 25a/25b sweep (1 KB – 10 MB).
func SmallFileSizes() []int {
	return []int{1 << 10, 10 << 10, 100 << 10, 1 << 20, 10 << 20}
}

// LargeFileSizes are the Fig. 26a sweep (20 MB – 1.2 GB, scaled down 10× to
// keep the harness laptop-friendly while preserving the relative shape).
func LargeFileSizes() []int {
	return []int{2 << 20, 5 << 20, 10 << 20, 40 << 20, 70 << 20, 120 << 20}
}
