package patterns

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csaw/internal/dsl"
	"csaw/internal/runtime"
	"csaw/internal/workload"
)

const testTimeout = 300 * time.Millisecond

func startSystem(t *testing.T, p *dsl.Program, opts runtime.Options) *runtime.System {
	t.Helper()
	sys, err := runtime.New(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

// --- Snapshot (Fig. 4) ---------------------------------------------------------

type auditLog struct {
	mu      sync.Mutex
	records [][]byte
}

func (l *auditLog) add(b []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, append([]byte(nil), b...))
}

func (l *auditLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

func (l *auditLog) last() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) == 0 {
		return nil
	}
	return l.records[len(l.records)-1]
}

func TestSnapshotOneTime(t *testing.T) {
	var log auditLog
	var seq atomic.Int32
	prog := Snapshot(SnapshotConfig{
		Timeout: testTimeout,
		Capture: func(dsl.HostCtx) ([]byte, error) {
			return []byte(fmt.Sprintf("state-%d", seq.Add(1))), nil
		},
		Apply: func(_ dsl.HostCtx, b []byte) error { log.add(b); return nil },
	})
	sys := startSystem(t, prog, runtime.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sys.Invoke(ctx, ActInstance, SnapshotJunction); err != nil {
		t.Fatal(err)
	}
	if log.len() != 1 || string(log.last()) != "state-1" {
		t.Fatalf("audit log = %d records, last %q", log.len(), log.last())
	}
}

func TestSnapshotContinuous(t *testing.T) {
	// Use-case ③: repeated invocation captures a sequence of states.
	var log auditLog
	var seq atomic.Int32
	prog := Snapshot(SnapshotConfig{
		Timeout: testTimeout,
		Capture: func(dsl.HostCtx) ([]byte, error) {
			return []byte(fmt.Sprintf("state-%d", seq.Add(1))), nil
		},
		Apply: func(_ dsl.HostCtx, b []byte) error { log.add(b); return nil },
	})
	sys := startSystem(t, prog, runtime.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}
	const rounds = 10
	for i := 0; i < rounds; i++ {
		if err := sys.Invoke(ctx, ActInstance, SnapshotJunction); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if log.len() != rounds {
		t.Fatalf("audit log has %d records, want %d", log.len(), rounds)
	}
	if string(log.last()) != fmt.Sprintf("state-%d", rounds) {
		t.Fatalf("last record %q", log.last())
	}
}

func TestSnapshotAuditorDown(t *testing.T) {
	// Failure-awareness (Fig. 4 ➋): with the auditor crashed, Act's exchange
	// times out and complain() runs instead of blocking forever.
	var complained atomic.Int32
	prog := Snapshot(SnapshotConfig{
		Timeout:  100 * time.Millisecond,
		Capture:  func(dsl.HostCtx) ([]byte, error) { return []byte("s"), nil },
		Apply:    func(dsl.HostCtx, []byte) error { return nil },
		Complain: func(dsl.HostCtx) error { complained.Add(1); return nil },
	})
	sys := startSystem(t, prog, runtime.Options{})
	ctx := context.Background()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}
	sys.CrashInstance(AudInstance)
	if err := sys.Invoke(ctx, ActInstance, SnapshotJunction); err != nil {
		t.Fatalf("complain should have absorbed the failure: %v", err)
	}
	if complained.Load() == 0 {
		t.Fatal("complain never ran")
	}
}

// --- Sharding (Fig. 5) -----------------------------------------------------------

// shardApp is the front-end application context: a current request slot and
// per-shard hit counts.
type shardApp struct {
	mu      sync.Mutex
	current string
	resp    []byte
}

func TestShardingRoutesByKeyHash(t *testing.T) {
	const n = 4
	app := &shardApp{}
	var hits [n]atomic.Int64

	prog := Sharding(ShardingConfig{
		N:       n,
		Timeout: testTimeout,
		Choose: KeyHashChooser(n, func(dsl.HostCtx) (string, error) {
			app.mu.Lock()
			defer app.mu.Unlock()
			return app.current, nil
		}),
		CaptureRequest: func(dsl.HostCtx) ([]byte, error) {
			app.mu.Lock()
			defer app.mu.Unlock()
			return []byte(app.current), nil
		},
		HandleRequest: func(ctx dsl.HostCtx, req []byte) ([]byte, error) {
			// Each backend instance records its hits via its app context.
			idx := ctx.App().(int)
			hits[idx].Add(1)
			return []byte("echo:" + string(req)), nil
		},
		DeliverResponse: func(_ dsl.HostCtx, b []byte) error {
			app.mu.Lock()
			defer app.mu.Unlock()
			app.resp = append([]byte(nil), b...)
			return nil
		},
	})
	sys := startSystem(t, prog, runtime.Options{})
	for i := 0; i < n; i++ {
		sys.SetApp(BackInstance(i), i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}

	const reqs = 40
	counts := map[int]int{}
	for i := 0; i < reqs; i++ {
		key := fmt.Sprintf("key:%06d", i)
		app.mu.Lock()
		app.current = key
		app.mu.Unlock()
		if err := sys.Invoke(ctx, FrontInstance, ShardJunction); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		app.mu.Lock()
		got := string(app.resp)
		app.mu.Unlock()
		if got != "echo:"+key {
			t.Fatalf("request %d: response %q", i, got)
		}
		counts[int(workload.Djb2(key))%n]++
	}
	// Each backend's hit count must equal the hash-predicted count.
	total := 0
	for i := 0; i < n; i++ {
		if int(hits[i].Load()) != counts[i] {
			t.Errorf("shard %d: %d hits, hash predicts %d", i, hits[i].Load(), counts[i])
		}
		total += int(hits[i].Load())
	}
	if total != reqs {
		t.Fatalf("total hits %d != %d requests", total, reqs)
	}
}

func TestShardingBadChooser(t *testing.T) {
	prog := Sharding(ShardingConfig{
		N:              2,
		Timeout:        testTimeout,
		Choose:         func(dsl.HostCtx) (int, error) { return 7, nil }, // out of range
		CaptureRequest: func(dsl.HostCtx) ([]byte, error) { return []byte("x"), nil },
		HandleRequest:  func(_ dsl.HostCtx, b []byte) ([]byte, error) { return b, nil },
	})
	sys := startSystem(t, prog, runtime.Options{})
	ctx := context.Background()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sys.Invoke(ctx, FrontInstance, ShardJunction); err == nil {
		t.Fatal("out-of-range chooser accepted")
	}
}

// --- Caching (Fig. 7) ---------------------------------------------------------------

func TestCachingHitAndMiss(t *testing.T) {
	type cacheApp struct {
		mu      sync.Mutex
		store   map[string][]byte
		current string
		resp    []byte
	}
	app := &cacheApp{store: map[string][]byte{}}
	var funCalls atomic.Int32

	prog := Caching(CachingConfig{
		Timeout: testTimeout,
		CheckCacheable: func(dsl.HostCtx) (bool, error) {
			app.mu.Lock()
			defer app.mu.Unlock()
			// Requests prefixed "nc:" are non-cacheable.
			return len(app.current) < 3 || app.current[:3] != "nc:", nil
		},
		LookupCache: func(dsl.HostCtx) (bool, error) {
			app.mu.Lock()
			defer app.mu.Unlock()
			if v, ok := app.store[app.current]; ok {
				app.resp = v
				return true, nil
			}
			return false, nil
		},
		CaptureRequest: func(dsl.HostCtx) ([]byte, error) {
			app.mu.Lock()
			defer app.mu.Unlock()
			return []byte(app.current), nil
		},
		DeliverResponse: func(_ dsl.HostCtx, b []byte) error {
			app.mu.Lock()
			defer app.mu.Unlock()
			app.resp = append([]byte(nil), b...)
			return nil
		},
		UpdateCache: func(dsl.HostCtx) error {
			app.mu.Lock()
			defer app.mu.Unlock()
			app.store[app.current] = app.resp
			return nil
		},
		ComputeF: func(_ dsl.HostCtx, req []byte) ([]byte, error) {
			funCalls.Add(1)
			return []byte("F(" + string(req) + ")"), nil
		},
	})
	sys := startSystem(t, prog, runtime.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}

	do := func(req string) string {
		app.mu.Lock()
		app.current = req
		app.mu.Unlock()
		if err := sys.Invoke(ctx, CacheInstance, CacheJunction); err != nil {
			t.Fatalf("request %q: %v", req, err)
		}
		app.mu.Lock()
		defer app.mu.Unlock()
		return string(app.resp)
	}

	// Miss: computes and caches.
	if got := do("a"); got != "F(a)" {
		t.Fatalf("first a = %q", got)
	}
	if funCalls.Load() != 1 {
		t.Fatalf("fun calls = %d", funCalls.Load())
	}
	// Hit: served from cache, no new Fun call.
	if got := do("a"); got != "F(a)" {
		t.Fatalf("second a = %q", got)
	}
	if funCalls.Load() != 1 {
		t.Fatalf("cache hit still called Fun (%d calls)", funCalls.Load())
	}
	// Different key: miss again.
	if got := do("b"); got != "F(b)" {
		t.Fatalf("b = %q", got)
	}
	if funCalls.Load() != 2 {
		t.Fatalf("fun calls = %d", funCalls.Load())
	}
	// Non-cacheable: always computes, never cached.
	if got := do("nc:x"); got != "F(nc:x)" {
		t.Fatalf("nc:x = %q", got)
	}
	if got := do("nc:x"); got != "F(nc:x)" {
		t.Fatalf("nc:x repeat = %q", got)
	}
	if funCalls.Load() != 4 {
		t.Fatalf("non-cacheable should always call Fun: %d calls", funCalls.Load())
	}
}

// --- Parallel sharding (Fig. 6) -----------------------------------------------------

func TestParallelShardingFanOut(t *testing.T) {
	const n = 3
	var hits [n]atomic.Int64
	prog := ParallelSharding(ParallelShardingConfig{
		N:       n,
		Timeout: testTimeout,
		ChooseSet: func(dsl.HostCtx) ([]int, error) {
			return []int{0, 1, 2}, nil
		},
		CaptureRequest: func(dsl.HostCtx) ([]byte, error) { return []byte("req"), nil },
		HandleRequest: func(ctx dsl.HostCtx, req []byte) ([]byte, error) {
			hits[ctx.App().(int)].Add(1)
			return req, nil
		},
	})
	sys := startSystem(t, prog, runtime.Options{})
	for i := 0; i < n; i++ {
		sys.SetApp(BackInstance(i), i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sys.Invoke(ctx, FrontInstance, ShardJunction); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if hits[i].Load() != 1 {
			t.Errorf("backend %d hits = %d, want 1", i, hits[i].Load())
		}
	}
	// HaveAtLeastOne must be set after a successful round.
	j, err := sys.Junction(FrontInstance, ShardJunction)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := j.Table().Prop("HaveAtLeastOne"); !v {
		t.Fatal("HaveAtLeastOne not asserted")
	}
}

func TestParallelShardingSurvivesBackendFailure(t *testing.T) {
	const n = 3
	var hits [n]atomic.Int64
	var complained atomic.Int32
	prog := ParallelSharding(ParallelShardingConfig{
		N:       n,
		Timeout: 150 * time.Millisecond,
		ChooseSet: func(dsl.HostCtx) ([]int, error) {
			return []int{0, 1, 2}, nil
		},
		CaptureRequest: func(dsl.HostCtx) ([]byte, error) { return []byte("req"), nil },
		HandleRequest: func(ctx dsl.HostCtx, req []byte) ([]byte, error) {
			hits[ctx.App().(int)].Add(1)
			return req, nil
		},
		Complain: func(dsl.HostCtx) error { complained.Add(1); return nil },
	})
	sys := startSystem(t, prog, runtime.Options{})
	for i := 0; i < n; i++ {
		sys.SetApp(BackInstance(i), i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}
	// Kill one backend: the round must still succeed via the others.
	sys.CrashInstance(BackInstance(1))
	if err := sys.Invoke(ctx, FrontInstance, ShardJunction); err != nil {
		t.Fatal(err)
	}
	if hits[0].Load() != 1 || hits[2].Load() != 1 {
		t.Fatalf("surviving backends hits = %d, %d", hits[0].Load(), hits[2].Load())
	}
	j, _ := sys.Junction(FrontInstance, ShardJunction)
	if v, _ := j.Table().Prop("HaveAtLeastOne"); !v {
		t.Fatal("HaveAtLeastOne should hold with 2/3 backends")
	}
	// The dead backend is marked inactive.
	dead := dsl.IndexedName("ActiveBackend", BackInstance(1)+"::"+ShardJunction)
	if v, _ := j.Table().Prop(dead); v {
		t.Fatal("crashed backend still marked active")
	}
	if complained.Load() != 0 {
		t.Fatal("complain ran despite a viable backend")
	}

	// Kill the rest: now the round completes with a complaint.
	sys.CrashInstance(BackInstance(0))
	sys.CrashInstance(BackInstance(2))
	if err := sys.Invoke(ctx, FrontInstance, ShardJunction); err != nil {
		t.Fatal(err)
	}
	if complained.Load() == 0 {
		t.Fatal("complain should run when no backend is viable")
	}
}

// --- Fail-over (§7.3) -----------------------------------------------------------------

// kvApp is a tiny replicated state machine used to exercise fail-over: the
// canonical state is a counter; each request increments it.
type kvApp struct {
	mu      sync.Mutex
	pending string // client request
	state   int64  // front-side view of canonical state
	resp    string
}

type kvBackend struct {
	mu    sync.Mutex
	state int64
	serve atomic.Int64
}

func failoverProgram(t *testing.T, app *kvApp, backs []*kvBackend, timeout time.Duration) *dsl.Program {
	t.Helper()
	return Failover(FailoverConfig{
		N:       len(backs),
		Timeout: timeout,
		InitialState: func(dsl.HostCtx) ([]byte, error) {
			return []byte("0"), nil
		},
		PrepareRequest: func(dsl.HostCtx) ([]byte, error) {
			app.mu.Lock()
			defer app.mu.Unlock()
			return []byte(app.pending), nil
		},
		ApplyStateAtFront: func(_ dsl.HostCtx, b []byte) error {
			app.mu.Lock()
			defer app.mu.Unlock()
			fmt.Sscanf(string(b), "%d", &app.state)
			return nil
		},
		ApplyStateAtBack: func(ctx dsl.HostCtx, b []byte) error {
			be := ctx.App().(*kvBackend)
			be.mu.Lock()
			defer be.mu.Unlock()
			fmt.Sscanf(string(b), "%d", &be.state)
			return nil
		},
		HandleRequest: func(ctx dsl.HostCtx, req []byte) ([]byte, error) {
			be := ctx.App().(*kvBackend)
			be.mu.Lock()
			defer be.mu.Unlock()
			be.state++
			be.serve.Add(1)
			return []byte(fmt.Sprintf("%d", be.state)), nil
		},
		DeliverResponse: func(_ dsl.HostCtx, b []byte) error {
			app.mu.Lock()
			defer app.mu.Unlock()
			app.resp = string(b)
			fmt.Sscanf(string(b), "%d", &app.state)
			return nil
		},
		CaptureState: func(dsl.HostCtx) ([]byte, error) {
			app.mu.Lock()
			defer app.mu.Unlock()
			return []byte(fmt.Sprintf("%d", app.state)), nil
		},
	})
}

// waitRegistered blocks until the front-end's client junction sees n
// registered backends (Backend[b] props applied).
func waitRegistered(t *testing.T, sys *runtime.System, n int, deadline time.Duration) {
	t.Helper()
	jc, err := sys.Junction(FrontEnd, FrontClientJunction)
	if err != nil {
		t.Fatal(err)
	}
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		jc.Table().ApplyPending()
		got := 0
		for i := 0; i < n; i++ {
			b := dsl.IndexedName("Backend", FailoverBackend(i)+"::"+ServeJunction)
			if v, _ := jc.Table().Prop(b); v {
				got++
			}
		}
		if got == n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("backends never registered")
}

// failoverClient submits one request through τf::c, retrying a few times: a
// request may legitimately fail while the whole back-end set is mid
// re-registration (the front complains; the client tries again — the paper's
// availability story is about the *system* recovering, not every individual
// request succeeding).
func failoverClient(ctx context.Context, sys *runtime.System, app *kvApp, req string) (string, error) {
	jc, err := sys.Junction(FrontEnd, FrontClientJunction)
	if err != nil {
		return "", err
	}
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		app.mu.Lock()
		app.pending = req
		app.mu.Unlock()
		jc.InjectProp("Req", true)
		if lastErr = sys.InvokeWhenReady(ctx, FrontEnd, FrontClientJunction); lastErr == nil {
			app.mu.Lock()
			defer app.mu.Unlock()
			return app.resp, nil
		}
		select {
		case <-ctx.Done():
			return "", lastErr
		case <-time.After(100 * time.Millisecond):
		}
	}
	return "", lastErr
}

func TestFailoverServesAndFailsOver(t *testing.T) {
	app := &kvApp{}
	backs := []*kvBackend{{}, {}}
	prog := failoverProgram(t, app, backs, 250*time.Millisecond)
	sys := startSystem(t, prog, runtime.Options{})
	sys.SetApp(FailoverBackend(0), backs[0])
	sys.SetApp(FailoverBackend(1), backs[1])
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}

	// Wait for both backends to register, then issue the first request:
	// both backends serve it (warm replication), counter = 1.
	waitRegistered(t, sys, 2, 10*time.Second)
	resp, err := failoverClient(ctx, sys, app, "inc")
	if err != nil {
		t.Fatalf("request 1: %v", err)
	}
	if resp != "1" {
		t.Fatalf("response = %q, want 1", resp)
	}
	if backs[0].serve.Load() < 1 || backs[1].serve.Load() < 1 {
		t.Fatalf("warm replication: served %d + %d, want both", backs[0].serve.Load(), backs[1].serve.Load())
	}

	// Second request still works.
	if resp, err = failoverClient(ctx, sys, app, "inc"); err != nil || resp != "2" {
		t.Fatalf("request 2: %q, %v", resp, err)
	}

	// Crash one backend: the system continues on the survivor.
	sys.CrashInstance(FailoverBackend(1))
	if resp, err = failoverClient(ctx, sys, app, "inc"); err != nil || resp != "3" {
		t.Fatalf("request after crash: %q, %v", resp, err)
	}
	if backs[0].serve.Load() < 3 {
		t.Fatalf("survivor served %d requests, want ≥ 3", backs[0].serve.Load())
	}
}

func TestFailoverBackendRejoins(t *testing.T) {
	app := &kvApp{}
	backs := []*kvBackend{{}, {}}
	prog := failoverProgram(t, app, backs, 200*time.Millisecond)
	sys := startSystem(t, prog, runtime.Options{})
	sys.SetApp(FailoverBackend(0), backs[0])
	sys.SetApp(FailoverBackend(1), backs[1])
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}
	waitRegistered(t, sys, 2, 10*time.Second)
	if _, err := failoverClient(ctx, sys, app, "inc"); err != nil {
		t.Fatal(err)
	}
	// Crash and restart backend 1; it must re-register via startup (Fig. 8
	// ⑤: "the back-end attempts to register itself anew") and get the
	// canonical state resynchronized.
	sys.CrashInstance(FailoverBackend(1))
	if _, err := failoverClient(ctx, sys, app, "inc"); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartInstance(FailoverBackend(1), backs[1]); err != nil {
		t.Fatal(err)
	}
	// Give the registration cycle time to complete, then check the rejoined
	// backend serves again.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := failoverClient(ctx, sys, app, "inc")
		if err != nil {
			t.Fatal(err)
		}
		_ = resp
		if backs[1].serve.Load() > 0 {
			// The rejoined backend processed a request after its resync. Warm
			// replicas may transiently lag by an in-flight round (the paper
			// notes the design's conservatism, §7.3); the guarantee is that
			// the replica's state never runs AHEAD of the canonical counter
			// and keeps advancing with subsequent requests.
			backs[1].mu.Lock()
			st := backs[1].state
			backs[1].mu.Unlock()
			app.mu.Lock()
			canon := app.state
			app.mu.Unlock()
			if st > canon {
				t.Fatalf("rejoined backend state %d ahead of canonical %d", st, canon)
			}
			if st == 0 {
				t.Fatal("rejoined backend never resynced state")
			}
			before := st
			if _, err := failoverClient(ctx, sys, app, "inc"); err != nil {
				t.Fatal(err)
			}
			backs[1].mu.Lock()
			after := backs[1].state
			backs[1].mu.Unlock()
			if after <= before {
				t.Fatalf("rejoined backend stopped advancing: %d → %d", before, after)
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("backend never rejoined")
}

// --- Watched fail-over (§7.4) ------------------------------------------------------------

func TestWatchedFailover(t *testing.T) {
	var oServed, sServed atomic.Int64
	var mu sync.Mutex
	pending := ""
	resp := ""

	prog := WatchedFailover(WatchedFailoverConfig{
		Timeout:      250 * time.Millisecond,
		WatchBackoff: 50 * time.Millisecond,
		PrepareRequest: func(dsl.HostCtx) ([]byte, error) {
			mu.Lock()
			defer mu.Unlock()
			return []byte(pending), nil
		},
		HandleRequest: func(ctx dsl.HostCtx, req []byte) ([]byte, error) {
			if ctx.Instance() == PrimaryBackend {
				oServed.Add(1)
			} else {
				sServed.Add(1)
			}
			return []byte(ctx.Instance() + ":" + string(req)), nil
		},
		DeliverResponse: func(_ dsl.HostCtx, b []byte) error {
			mu.Lock()
			defer mu.Unlock()
			resp = string(b)
			return nil
		},
	})
	sys := startSystem(t, prog, runtime.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}

	do := func(req string) (string, error) {
		mu.Lock()
		pending = req
		mu.Unlock()
		if err := sys.InvokeWhenReady(ctx, WatchedFront, WatchedJunction); err != nil {
			return "", err
		}
		mu.Lock()
		defer mu.Unlock()
		return resp, nil
	}

	// Normal operation: o replies (preferred backend).
	got, err := do("r1")
	if err != nil {
		t.Fatal(err)
	}
	if got != "o:r1" {
		t.Fatalf("response = %q, want o:r1", got)
	}
	if oServed.Load() == 0 {
		t.Fatal("primary never served")
	}

	// Crash o: the watchdog must flip failover; s then serves.
	sys.CrashInstance(PrimaryBackend)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got, err = do("r2")
		if err == nil && got == "s:r2" {
			return // fail-over complete
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("fail-over to s never happened (last response %q, err %v)", got, err)
}

// TestSequentialFailover exercises the paper's §7.3 suggested design
// variant: back-ends tried in order, first response wins, automatic
// fall-through to the next replica when the preferred one is down.
func TestSequentialFailover(t *testing.T) {
	app := &kvApp{}
	backs := []*kvBackend{{}, {}}
	prog := Failover(FailoverConfig{
		N:            2,
		Mode:         Sequential,
		Timeout:      250 * time.Millisecond,
		InitialState: func(dsl.HostCtx) ([]byte, error) { return []byte("0"), nil },
		PrepareRequest: func(dsl.HostCtx) ([]byte, error) {
			app.mu.Lock()
			defer app.mu.Unlock()
			return []byte(app.pending), nil
		},
		ApplyStateAtFront: func(_ dsl.HostCtx, b []byte) error {
			app.mu.Lock()
			defer app.mu.Unlock()
			fmt.Sscanf(string(b), "%d", &app.state)
			return nil
		},
		ApplyStateAtBack: func(ctx dsl.HostCtx, b []byte) error {
			be := ctx.App().(*kvBackend)
			be.mu.Lock()
			defer be.mu.Unlock()
			fmt.Sscanf(string(b), "%d", &be.state)
			return nil
		},
		HandleRequest: func(ctx dsl.HostCtx, req []byte) ([]byte, error) {
			be := ctx.App().(*kvBackend)
			be.mu.Lock()
			defer be.mu.Unlock()
			be.state++
			be.serve.Add(1)
			return []byte(fmt.Sprintf("%d", be.state)), nil
		},
		DeliverResponse: func(_ dsl.HostCtx, b []byte) error {
			app.mu.Lock()
			defer app.mu.Unlock()
			app.resp = string(b)
			fmt.Sscanf(string(b), "%d", &app.state)
			return nil
		},
		CaptureState: func(dsl.HostCtx) ([]byte, error) {
			app.mu.Lock()
			defer app.mu.Unlock()
			return []byte(fmt.Sprintf("%d", app.state)), nil
		},
	})
	sys := startSystem(t, prog, runtime.Options{})
	sys.SetApp(FailoverBackend(0), backs[0])
	sys.SetApp(FailoverBackend(1), backs[1])
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}
	waitRegistered(t, sys, 2, 10*time.Second)

	// Sequential mode: exactly ONE backend serves each request (the paper's
	// lower-network-overhead variant), unlike WarmAll.
	resp, err := failoverClient(ctx, sys, app, "inc")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "1" {
		t.Fatalf("response = %q", resp)
	}
	if backs[0].serve.Load()+backs[1].serve.Load() != 1 {
		t.Fatalf("sequential mode engaged %d+%d backends, want exactly 1",
			backs[0].serve.Load(), backs[1].serve.Load())
	}

	// Crash the first backend: requests fall through to the second.
	sys.CrashInstance(FailoverBackend(0))
	resp, err = failoverClient(ctx, sys, app, "inc")
	if err != nil {
		t.Fatal(err)
	}
	if backs[1].serve.Load() == 0 {
		t.Fatal("sequential fall-through to the second backend never happened")
	}
}
