package patterns

import (
	"time"

	"csaw/internal/dsl"
	"csaw/internal/formula"
	"csaw/internal/runtime"
)

// Names of the watched fail-over architecture (§7.4, Figs. 15–17).
const (
	// WatchedFront is the front-end f.
	WatchedFront = "f"
	// Watchdog is the arbiter instance w with junctions co/cs/cunrecov.
	Watchdog = "w"
	// PrimaryBackend is o (preferred) and StandbyBackend is s.
	PrimaryBackend = "o"
	StandbyBackend = "s"
	// WatchedJunction is the single junction of f, o and s.
	WatchedJunction = "junction"
)

// WatchedFailoverConfig parameterizes the watchdog-arbitrated two-backend
// fail-over: o is preferred, s is used when o is unavailable, and a watchdog
// instance flips the failover/nofailover propositions by observing liveness
// (the S(x) guards of Fig. 16).
type WatchedFailoverConfig struct {
	// Timeout is the t parameter.
	Timeout time.Duration
	// WatchBackoff paces watchdog assertions. Zero means Timeout.
	WatchBackoff time.Duration
	// PrepareRequest is ⌊H1⌉ + save(..., n) at f.
	PrepareRequest dsl.SourceFunc
	// HandleRequest is ⌊H2⌉ at a backend: request payload → reply payload.
	HandleRequest func(ctx dsl.HostCtx, req []byte) ([]byte, error)
	// DeliverResponse is restore(m, ...) + ⌊H3⌉ at f.
	DeliverResponse dsl.SinkFunc
	// Complain is the failure stub; also invoked by τw::cunrecov when the
	// system becomes unrecoverable. Optional.
	Complain dsl.HostFunc
}

// WatchedFailover builds the §7.4 program.
func WatchedFailover(cfg WatchedFailoverConfig) *dsl.Program {
	if cfg.WatchBackoff <= 0 {
		cfg.WatchBackoff = cfg.Timeout
	}
	p := dsl.NewProgram()
	f := dsl.J(WatchedFront, WatchedJunction)

	// def RunBackend(n, t, tgt) ◀ ⟨|write(n, tgt); assert [tgt] Run[tgt]|⟩
	// otherwise[t] complain()
	p.Func("RunBackend", func(args ...string) []dsl.Expr {
		tgt := args[0]
		return []dsl.Expr{
			dsl.OtherwiseT(
				dsl.Txn{Body: []dsl.Expr{
					dsl.Write{Data: "n", To: dsl.J(tgt, WatchedJunction)},
					dsl.Assert{Target: dsl.J(tgt, WatchedJunction), Prop: dsl.PRAt("Run", tgt)},
				}},
				cfg.Timeout,
				complainOr(cfg.Complain),
			),
		}
	})

	// --- τf (Fig. 16) -----------------------------------------------------------
	fDecls := dsl.Decls(
		dsl.InitProp{Name: "Reply", Init: false},
		dsl.InitProp{Name: "failover", Init: false},
		dsl.InitProp{Name: "nofailover", Init: false},
		dsl.InitData{Name: "n"},
		dsl.InitData{Name: "m"},
	)
	fDecls = append(fDecls, dsl.ForProps("Run", []string{PrimaryBackend, StandbyBackend}, false)...)

	p.Type("tauWF").Junction(WatchedJunction, dsl.Def(
		fDecls,
		// ⌊H1⌉; save(..., n)
		dsl.Save{Data: "n", From: cfg.PrepareRequest},
		dsl.Verify{Cond: dsl.ForAll([]string{PrimaryBackend, StandbyBackend}, func(b string) formula.Formula {
			return formula.Not(formula.P(dsl.IndexedName("Run", b)))
		})},
		dsl.Verify{Cond: formula.Not(formula.P("Reply"))},
		dsl.Verify{Cond: formula.Not(formula.And(formula.P("failover"), formula.P("nofailover")))},
		dsl.Case{
			Arms: []dsl.CaseArm{
				dsl.Arm(formula.And(formula.P("failover"), formula.Not(formula.P("nofailover"))), dsl.TermBreak,
					p.CallF("RunBackend", StandbyBackend)),
				dsl.Arm(formula.And(formula.Not(formula.P("failover")), formula.P("nofailover")), dsl.TermBreak,
					p.CallF("RunBackend", PrimaryBackend)),
			},
			Otherwise: []dsl.Expr{
				dsl.OtherwiseT(
					dsl.Par{
						p.CallF("RunBackend", PrimaryBackend),
						p.CallF("RunBackend", StandbyBackend),
					},
					cfg.Timeout,
					complainOr(cfg.Complain),
				),
			},
		},
		// "Don't wait too long for completion, prioritize throughput."
		dsl.OtherwiseT(
			dsl.Wait{Data: []string{"m"}, Cond: formula.P("Reply")},
			cfg.Timeout,
			dsl.Return{},
		),
		dsl.Retract{Prop: dsl.PR("Reply")},
		dsl.Restore{Data: "m", Into: cfg.DeliverResponse},
	).Guarded(formula.Not(formula.P("Reply"))).ManuallyScheduled())

	// --- watchdog τw (Fig. 16) ---------------------------------------------------
	// def Watch(tgt, prop): ⟨|assert [tgt] prop; assert [f] prop|⟩ otherwise complain()
	p.Func("Watch", func(args ...string) []dsl.Expr {
		tgt, prop := args[0], args[1]
		return []dsl.Expr{
			dsl.OtherwiseT(
				dsl.Txn{Body: []dsl.Expr{
					dsl.Assert{Target: dsl.J(tgt, WatchedJunction), Prop: dsl.PR(prop)},
					dsl.Assert{Target: f, Prop: dsl.PR(prop)},
				}},
				cfg.Timeout,
				complainOr(cfg.Complain),
			),
			// Pace the watchdog (its guard can stay true indefinitely).
			dsl.OtherwiseT(dsl.Wait{Cond: formula.FalseF{}}, cfg.WatchBackoff, dsl.Skip{}),
		}
	})

	s := func(inst string) formula.Formula { return runtime.Running(inst + "::" + WatchedJunction) }

	// The watchdog holds no state of its own: failover/nofailover are
	// declared where they are delivered (the backends and f).
	w := p.Type("tauW")
	w.Junction("cs", dsl.Def(
		nil,
		p.CallF("Watch", StandbyBackend, "failover"),
	).Guarded(formula.And(formula.Not(s(PrimaryBackend)), s(StandbyBackend), s(WatchedFront))))
	w.Junction("co", dsl.Def(
		nil,
		p.CallF("Watch", PrimaryBackend, "nofailover"),
	).Guarded(formula.And(formula.Not(s(StandbyBackend)), s(PrimaryBackend), s(WatchedFront))))
	w.Junction("cunrecov", dsl.Def(
		nil,
		complainOr(cfg.Complain),
		dsl.OtherwiseT(dsl.Wait{Cond: formula.FalseF{}}, cfg.WatchBackoff, dsl.Skip{}),
	).Guarded(formula.Or(
		formula.And(formula.Not(s(StandbyBackend)), formula.Not(s(PrimaryBackend))),
		formula.Not(s(WatchedFront)),
	)))

	// --- backends τo / τs (Fig. 17) ------------------------------------------------
	// def reply(t, other): verify ¬f@Reply; verify ¬other@Reply;
	// ⟨save(..., m); write(m, f); assert [f] Reply⟩ otherwise[t] complain()
	p.Func("reply", func(args ...string) []dsl.Expr {
		other := args[0]
		return []dsl.Expr{
			dsl.Verify{Cond: formula.Not(formula.At(WatchedFront+"::"+WatchedJunction, "Reply"))},
			// "we ensure that the other backend isn't currently in Reply
			// mode" — ternary: if the other backend is down, this is Unknown
			// and must not block the reply, so the implication form is used.
			dsl.Verify{Cond: formula.Implies(
				runtime.Running(other+"::"+WatchedJunction),
				formula.Not(formula.At(other+"::"+WatchedJunction, "Reply")),
			)},
			dsl.OtherwiseT(
				dsl.Scope{Body: []dsl.Expr{
					dsl.Write{Data: "m", To: f},
					dsl.Assert{Target: f, Prop: dsl.PR("Reply")},
				}},
				cfg.Timeout,
				complainOr(cfg.Complain),
			),
		}
	})

	backend := func(self, other string, onlyOnFailover bool) *dsl.JunctionDef {
		decls := dsl.Decls(
			dsl.InitProp{Name: dsl.IndexedName("Run", self), Init: false},
			dsl.InitProp{Name: "Reply", Init: false},
			dsl.InitData{Name: "n"},
			dsl.InitData{Name: "m"},
		)
		if onlyOnFailover {
			// The standby consults failover in its case; the watchdog's cs
			// junction asserts it here.
			decls = append(decls, dsl.InitProp{Name: "failover", Init: false})
		} else {
			// The primary only *receives* nofailover (from the watchdog's co
			// junction); its consumer is f. The declaration is required for
			// the remote assert to be deliverable.
			decls = append(decls, dsl.InitProp{Name: "nofailover", Init: false})
		}
		body := []dsl.Expr{
			dsl.Verify{Cond: formula.Not(formula.P("Reply"))},
			dsl.Restore{Data: "n", Writes: []string{"m"}, Into: func(ctx dsl.HostCtx, req []byte) error {
				resp, err := cfg.HandleRequest(ctx, req)
				if err != nil {
					return err
				}
				return ctx.Save("m", resp)
			}},
			dsl.OtherwiseT(
				dsl.Retract{Target: f, Prop: dsl.PRAt("Run", self)},
				cfg.Timeout,
				complainOr(cfg.Complain),
			),
		}
		if onlyOnFailover {
			body = append(body, dsl.Case{
				Arms: []dsl.CaseArm{
					dsl.Arm(formula.P("failover"), dsl.TermBreak,
						p.CallF("reply", other),
						dsl.Retract{Prop: dsl.PR("Reply")},
					),
				},
				Otherwise: []dsl.Expr{dsl.Skip{}},
			})
		} else {
			body = append(body,
				p.CallF("reply", other),
				dsl.Retract{Prop: dsl.PR("Reply")},
			)
		}
		return dsl.Def(decls, body...).Guarded(formula.P(dsl.IndexedName("Run", self)))
	}

	p.Type("tauO").Junction(WatchedJunction, backend(PrimaryBackend, StandbyBackend, false))
	p.Type("tauS").Junction(WatchedJunction, backend(StandbyBackend, PrimaryBackend, true))

	p.Instance(WatchedFront, "tauWF").
		Instance(Watchdog, "tauW").
		Instance(PrimaryBackend, "tauO").
		Instance(StandbyBackend, "tauS")
	// def main(t) ◀ (start w + start o(t) + start s(t)); start f(t)
	p.SetMain(
		dsl.Par{dsl.Start{Instance: Watchdog}, dsl.Start{Instance: PrimaryBackend}, dsl.Start{Instance: StandbyBackend}},
		dsl.Start{Instance: WatchedFront},
	)
	return p
}
