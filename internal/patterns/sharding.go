package patterns

import (
	"fmt"
	"time"

	"csaw/internal/dsl"
	"csaw/internal/formula"
)

// Names of the sharding architecture (Fig. 5).
const (
	// FrontInstance is the query router.
	FrontInstance = "Fnt"
	// ShardJunction is the single junction of front and back instances.
	ShardJunction = "junction"
)

// BackInstance names the i-th back-end (0-based), matching the paper's
// Bck1..BckN.
func BackInstance(i int) string { return fmt.Sprintf("Bck%d", i+1) }

// ShardingConfig parameterizes the N-ary sharding architecture.
type ShardingConfig struct {
	// N is the number of back-ends — "a compile-time configuration
	// parameter" (§5.2) affecting the Instances set and the idx set.
	N int
	// Timeout is the failure deadline per request round.
	Timeout time.Duration
	// Choose selects the back-end for the current request (the ⌊Choose()⌉
	// host block writing the tgt idx). It returns the 0-based shard index.
	// "⌊Choose();⌉{tgt} is sufficiently abstract to implement different
	// types of sharding" (§5.2): key-based and object-size-based choosers
	// are provided below.
	Choose func(ctx dsl.HostCtx) (int, error)
	// CaptureRequest serializes the current request (save(..., n)).
	CaptureRequest dsl.SourceFunc
	// HandleRequest processes the request at a back-end and returns the
	// serialized response (the back-end's restore; ⌊H2⌉; save(..., m)).
	HandleRequest func(ctx dsl.HostCtx, req []byte) ([]byte, error)
	// DeliverResponse consumes the response at the front-end (restore(m)).
	// Optional.
	DeliverResponse dsl.SinkFunc
	// Complain is the failure stub. Optional.
	Complain dsl.HostFunc
}

// Sharding builds the Fig. 5 program extended with the response flow of
// Fig. 7 (the back-end writes m back and retracts Work): an N-way
// partitioned query space where ⌊Choose()⌉ routes each request.
func Sharding(cfg ShardingConfig) *dsl.Program {
	p := dsl.NewProgram()

	backs := make([]string, cfg.N)
	for i := range backs {
		backs[i] = BackInstance(i) + "::" + ShardJunction
	}

	// def τFront :: (t)
	p.Type("tauFront").Junction(ShardJunction, dsl.Def(
		dsl.Decls(
			dsl.InitProp{Name: "Work", Init: false},
			dsl.InitData{Name: "n"},
			dsl.InitData{Name: "m"},
			dsl.DeclSet{Name: "Backs", Elems: backs},
			// | idx tgt of {Bck1, ..., BckN}   (Fig. 5 line ➊)
			dsl.DeclIdx{Name: "tgt", Of: "Backs"},
		),
		// ⌊Choose();⌉{tgt}
		dsl.Host{Label: "Choose", Writes: []string{"tgt"}, Fn: func(ctx dsl.HostCtx) error {
			i, err := cfg.Choose(ctx)
			if err != nil {
				return err
			}
			if i < 0 || i >= cfg.N {
				return fmt.Errorf("patterns: Choose returned shard %d of %d", i, cfg.N)
			}
			return ctx.SetIdx("tgt", backs[i])
		}},
		// save(..., n)
		dsl.Save{Data: "n", From: cfg.CaptureRequest},
		// ⟨write(n, tgt); assert [tgt] Work; wait [m] ¬Work⟩ otherwise[t] complain()
		dsl.OtherwiseT(
			dsl.Scope{Body: []dsl.Expr{
				dsl.Write{Data: "n", To: dsl.ByIdx("tgt")},
				dsl.Assert{Target: dsl.ByIdx("tgt"), Prop: dsl.PR("Work")},
				dsl.Wait{Data: []string{"m"}, Cond: formula.Not(formula.P("Work"))},
				dsl.Restore{Data: "m", Into: cfg.DeliverResponse},
			}},
			cfg.Timeout,
			complainOr(cfg.Complain),
		),
	))

	// def τBack — "closely follows τAuditing" (Fig. 5 caption), extended
	// with the response write.
	p.Type("tauBack").Junction(ShardJunction, backJunction(backCfg{
		front:    FrontInstance + "::" + ShardJunction,
		timeout:  cfg.Timeout,
		handle:   cfg.HandleRequest,
		complain: cfg.Complain,
	}))

	p.Instance(FrontInstance, "tauFront")
	starts := dsl.Par{dsl.Start{Instance: FrontInstance}}
	for i := 0; i < cfg.N; i++ {
		p.Instance(BackInstance(i), "tauBack")
		starts = append(starts, dsl.Start{Instance: BackInstance(i)})
	}
	p.SetMain(starts)
	return p
}

// backCfg parameterizes the shared τAuditing-style back-end junction.
type backCfg struct {
	front    string // fully-qualified front junction
	timeout  time.Duration
	handle   func(ctx dsl.HostCtx, req []byte) ([]byte, error)
	complain dsl.HostFunc
}

// backJunction builds the guard-on-Work request-processing junction used by
// sharding back-ends and the caching Fun instance: restore the request, run
// the host computation, write the response back, retract Work at the caller
// with retry-based failure tolerance.
func backJunction(cfg backCfg) *dsl.JunctionDef {
	frontInst, frontJn := splitFQ(cfg.front)
	return dsl.Def(
		dsl.Decls(
			dsl.InitProp{Name: "Work", Init: false},
			dsl.InitProp{Name: "Retried", Init: false},
			dsl.InitData{Name: "n"},
			dsl.InitData{Name: "m"},
		),
		// restore(n, ...); ⌊H2⌉{m}; save(..., m) — fused: the handler
		// consumes the request payload and produces the response payload.
		dsl.Restore{Data: "n", Writes: []string{"m"}, Into: func(ctx dsl.HostCtx, req []byte) error {
			resp, err := cfg.handle(ctx, req)
			if err != nil {
				return err
			}
			return ctx.Save("m", resp)
		}},
		dsl.Retract{Prop: dsl.PR("Retried")},
		dsl.Case{
			Arms: []dsl.CaseArm{
				dsl.Arm(formula.P("Work"), dsl.TermReconsider,
					dsl.OtherwiseT(
						dsl.Scope{Body: []dsl.Expr{
							dsl.Write{Data: "m", To: dsl.J(frontInst, frontJn)},
							dsl.Retract{Target: dsl.J(frontInst, frontJn), Prop: dsl.PR("Work")},
						}},
						cfg.timeout,
						dsl.If{
							Cond: formula.Not(formula.P("Retried")),
							Then: dsl.Assert{Prop: dsl.PR("Retried")},
							Else: complainOr(cfg.complain),
						},
					),
				),
			},
			Otherwise: []dsl.Expr{dsl.Skip{}},
		},
	).Guarded(formula.P("Work"))
}

func splitFQ(fq string) (inst, jn string) {
	for i := 0; i+1 < len(fq); i++ {
		if fq[i] == ':' && fq[i+1] == ':' {
			return fq[:i], fq[i+2:]
		}
	}
	return fq, ""
}
