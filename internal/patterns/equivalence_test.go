package patterns

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"csaw/internal/dsl"
	"csaw/internal/formula"
	"csaw/internal/obsv"
	"csaw/internal/runtime"
)

// The interpreter-vs-plan equivalence suite: every catalogue architecture is
// run twice — once on the compiled execution plan (the default) and once on
// the retained tree-walking interpreter (Options.DisableCompiledPlan) — with
// the same deterministic workload, and the quiescent KV state of every
// junction must be identical. This is the contract that lets exec.go stay the
// executable semantic reference for compiled.go.

// driveEntry applies the per-pattern deterministic workload. Every drive is
// written so the externally observable state at quiescence does not depend on
// scheduling interleavings.
func driveEntry(ctx context.Context, t *testing.T, name string, sys *runtime.System) {
	t.Helper()
	switch name {
	case "snapshot":
		for i := 0; i < 3; i++ {
			if err := sys.Invoke(ctx, ActInstance, SnapshotJunction); err != nil {
				t.Fatalf("invoke %d: %v", i, err)
			}
		}
	case "sharding":
		for i := 0; i < 3; i++ {
			if err := sys.Invoke(ctx, FrontInstance, ShardJunction); err != nil {
				t.Fatalf("invoke %d: %v", i, err)
			}
		}
	case "parallel-sharding":
		for i := 0; i < 2; i++ {
			if err := sys.Invoke(ctx, FrontInstance, ShardJunction); err != nil {
				t.Fatalf("invoke %d: %v", i, err)
			}
		}
	case "caching":
		for i := 0; i < 2; i++ {
			if err := sys.Invoke(ctx, CacheInstance, CacheJunction); err != nil {
				t.Fatalf("invoke %d: %v", i, err)
			}
		}
	case "failover":
		waitRegistered(t, sys, 2, 10*time.Second)
		jc, err := sys.Junction(FrontEnd, FrontClientJunction)
		if err != nil {
			t.Fatal(err)
		}
		jc.InjectProp("Req", true)
		var lastErr error
		for attempt := 0; attempt < 10; attempt++ {
			if lastErr = sys.InvokeWhenReady(ctx, FrontEnd, FrontClientJunction); lastErr == nil {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("failover request never served: %v", lastErr)
	case "watched-failover":
		if err := sys.InvokeWhenReady(ctx, WatchedFront, WatchedJunction); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("no drive defined for catalogue entry %q", name)
	}
}

// fingerprint renders the complete externally observable KV state of the
// system. Pending queues are drained first: the local-priority rule leaves a
// junction free to apply a queued remote update at its *next* scheduling, so
// how much of the queue has been absorbed at quiescence is a legitimate
// timing artifact, not a semantic difference — the comparison point is the
// table state with all delivered updates applied.
func fingerprint(sys *runtime.System) string {
	var b strings.Builder
	p := sys.Program()
	for _, inst := range p.InstanceNames() {
		tt := p.Types[p.Instances[inst]]
		jnames := make([]string, 0, len(tt.Junctions))
		for jn := range tt.Junctions {
			jnames = append(jnames, jn)
		}
		sort.Strings(jnames)
		for _, jn := range jnames {
			j, err := sys.Junction(inst, jn)
			if err != nil {
				fmt.Fprintf(&b, "%s::%s: down\n", inst, jn)
				continue
			}
			tb := j.Table()
			tb.ApplyPending()
			fmt.Fprintf(&b, "%s::%s:", inst, jn)
			for _, pn := range tb.PropNames() {
				v, _ := tb.Prop(pn)
				fmt.Fprintf(&b, " %s=%t", pn, v)
			}
			for _, dn := range tb.DataNames() {
				if !tb.Defined(dn) {
					fmt.Fprintf(&b, " %s=undef", dn)
					continue
				}
				d, _ := tb.Data(dn)
				fmt.Fprintf(&b, " %s=%x", dn, d)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// quiesce drains and fingerprints the system until the state is stable
// across consecutive samples. Draining a queue can itself unblock a guarded
// junction, so stability is a fixpoint, not a single read.
func quiesce(t *testing.T, sys *runtime.System) string {
	t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	prev := fingerprint(sys)
	stable := 0
	for time.Now().Before(deadline) {
		time.Sleep(40 * time.Millisecond)
		cur := fingerprint(sys)
		if cur == prev {
			stable++
			if stable >= 3 {
				return cur
			}
		} else {
			stable = 0
			prev = cur
		}
	}
	t.Fatal("system never quiesced")
	return ""
}

// driverErrorJunctions reports which junctions recorded driver failures —
// the equivalence claim is about *classes* of behaviour, so only the set of
// failing junctions is compared, not message text or counts.
func driverErrorJunctions(sys *runtime.System) []string {
	log, _ := sys.DriverErrors()
	set := map[string]bool{}
	for _, de := range log {
		set[de.Junction] = true
	}
	out := make([]string, 0, len(set))
	for fq := range set {
		out = append(out, fq)
	}
	sort.Strings(out)
	return out
}

type equivResult struct {
	state   string
	drivers []string
	sent    uint64
}

func runEntryOnce(t *testing.T, entry CatalogueEntry, interpreted bool) equivResult {
	t.Helper()
	// Tracing stays on through the whole suite: equivalence must hold with
	// the observability layer active, and the sink absorbs both paths'
	// event streams without influencing them.
	sys := startSystem(t, entry.Build(), runtime.Options{
		DisableCompiledPlan: interpreted,
		Trace:               obsv.NewRingSink(8192),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sys.RunMain(ctx); err != nil {
		t.Fatal(err)
	}
	driveEntry(ctx, t, entry.Name, sys)
	state := quiesce(t, sys)
	return equivResult{
		state:   state,
		drivers: driverErrorJunctions(sys),
		sent:    sys.TransportStats().Sent,
	}
}

// deterministicTransport lists entries whose drive produces an exact,
// schedule-independent message count; for these the transport totals must
// match across modes too. The failover entries retry and re-register on
// timing, so only message conservation is checked there (via quiescence).
var deterministicTransport = map[string]bool{
	"snapshot":          true,
	"sharding":          true,
	"parallel-sharding": true,
	"caching":           true,
}

func TestInterpreterPlanEquivalence(t *testing.T) {
	for _, entry := range Catalogue() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			t.Parallel()
			compiled := runEntryOnce(t, entry, false)
			interp := runEntryOnce(t, entry, true)

			if compiled.state != interp.state {
				t.Errorf("quiescent KV state diverges between compiled plan and interpreter:\n--- compiled ---\n%s--- interpreter ---\n%s", compiled.state, interp.state)
			}
			if strings.Join(compiled.drivers, ",") != strings.Join(interp.drivers, ",") {
				t.Errorf("driver-error junctions diverge: compiled=%v interpreter=%v", compiled.drivers, interp.drivers)
			}
			if deterministicTransport[entry.Name] && compiled.sent != interp.sent {
				t.Errorf("transport sent counts diverge: compiled=%d interpreter=%d", compiled.sent, interp.sent)
			}
		})
	}
}

// TestEquivalenceUnderLocalPriorityAblation re-runs the equivalence check
// with the local-priority rule disabled, pinning down that the keyed
// subscription machinery and the ApplyNow delivery path compose: the two
// ablation axes are independent.
func TestEquivalenceUnderLocalPriorityAblation(t *testing.T) {
	entry, ok := CatalogueEntryByName("sharding")
	if !ok {
		t.Fatal("sharding entry missing")
	}
	run := func(interpreted bool) string {
		sys := startSystem(t, entry.Build(), runtime.Options{
			DisableCompiledPlan:  interpreted,
			DisableLocalPriority: true,
		})
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := sys.RunMain(ctx); err != nil {
			t.Fatal(err)
		}
		driveEntry(ctx, t, entry.Name, sys)
		return quiesce(t, sys)
	}
	if c, i := run(false), run(true); c != i {
		t.Errorf("ablated equivalence diverges:\n--- compiled ---\n%s--- interpreter ---\n%s", c, i)
	}
}

// TestKitchenSinkEquivalence drives a synthetic program that concentrates
// the statement forms whose compiled closures were hand-mirrored from
// exec.go — case with break/next/reconsider, nested scope/txn rollback,
// verify, keep, if/else, par, idx assignment — through both execution modes.
func TestKitchenSinkEquivalence(t *testing.T) {
	build := func() *dsl.Program {
		p := dsl.NewProgram()
		p.Type("T").Junction("j", dsl.Def(
			dsl.Decls(
				dsl.InitProp{Name: "A", Init: false},
				dsl.InitProp{Name: "B", Init: false},
				dsl.InitProp{Name: "C", Init: false},
				dsl.InitProp{Name: "D", Init: false},
				dsl.InitProp{Name: "P[x]", Init: false},
				dsl.InitProp{Name: "P[y]", Init: false},
				dsl.DeclSet{Name: "S", Elems: []string{"x", "y"}},
				dsl.DeclIdx{Name: "cur", Of: "S"},
				dsl.InitData{Name: "n"},
			),
			dsl.Assert{Prop: dsl.PR("A")},
			dsl.If{
				Cond: formula.P("A"),
				Then: dsl.Assert{Prop: dsl.PR("B")},
				Else: dsl.Assert{Prop: dsl.PR("D")},
			},
			dsl.IdxAssign{Idx: "cur", Elem: "y"},
			dsl.Assert{Prop: dsl.PRIdx("P", "cur")},
			dsl.Case{
				Arms: []dsl.CaseArm{
					dsl.Arm(formula.P("D"), dsl.TermBreak, dsl.Retract{Prop: dsl.PR("D")}),
					dsl.Arm(formula.P("B"), dsl.TermNext, dsl.Retract{Prop: dsl.PR("B")}, dsl.Assert{Prop: dsl.PR("C")}),
					dsl.Arm(formula.P("C"), dsl.TermBreak, dsl.Save{Data: "n", From: func(dsl.HostCtx) ([]byte, error) {
						return []byte("sunk"), nil
					}}),
				},
				Otherwise: []dsl.Expr{dsl.Skip{}},
			},
			// Failed transaction: the rollback must erase exactly its own
			// writes (D, and nothing else) regardless of execution mode.
			dsl.Otherwise{
				Try: dsl.Txn{Body: []dsl.Expr{
					dsl.Assert{Prop: dsl.PR("D")},
					dsl.Verify{Cond: formula.P("B")}, // B was retracted: fails
				}},
				Handler: dsl.Skip{},
			},
			dsl.Verify{Cond: formula.Not(formula.P("D"))},
			dsl.Keep{Props: []string{"A"}},
			dsl.Par{
				dsl.Assert{Prop: dsl.PRAt("P", "x")},
				dsl.Retract{Prop: dsl.PR("A")},
			},
		))
		p.Instance("i", "T")
		p.SetMain(dsl.Start{Instance: "i"})
		return p
	}
	run := func(interpreted bool) string {
		sys := startSystem(t, build(), runtime.Options{DisableCompiledPlan: interpreted})
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := sys.RunMain(ctx); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := sys.Invoke(ctx, "i", "j"); err != nil {
				t.Fatalf("invoke %d: %v", i, err)
			}
		}
		return quiesce(t, sys)
	}
	c, i := run(false), run(true)
	if c != i {
		t.Errorf("kitchen-sink state diverges:\n--- compiled ---\n%s--- interpreter ---\n%s", c, i)
	}
	if !strings.Contains(c, "C=true") || !strings.Contains(c, "n=73756e6b") {
		t.Errorf("kitchen-sink did not reach the expected final state:\n%s", c)
	}
}
