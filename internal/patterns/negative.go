package patterns

import (
	"csaw/internal/dsl"
	"csaw/internal/formula"
)

// NegativeDeadlock builds a deliberately deadlocking two-party handshake:
// a::j retracts its go-flag and waits for an acknowledgment it only requests
// AFTER the wait — while b::j, the only writer of that acknowledgment, is
// guarded on the request. Neither side can proceed: a classic circular wait
// the bounded checker must find, with no environment escape hatch (every
// guard/wait proposition has a program writer, so none is injectable).
func NegativeDeadlock() *dsl.Program {
	p := dsl.NewProgram()
	p.Type("TA").Junction("j", dsl.Def(
		dsl.Decls(
			dsl.InitProp{Name: "GoA", Init: true},
			dsl.InitProp{Name: "AckB", Init: false},
		),
		dsl.Retract{Prop: dsl.PR("GoA")},
		// Wrong order: the wait precedes the request that would satisfy it.
		dsl.Wait{Cond: formula.P("AckB")},
		dsl.Assert{Target: dsl.J("b", "j"), Prop: dsl.PR("ReqB")},
	).Guarded(formula.P("GoA")))
	p.Type("TB").Junction("j", dsl.Def(
		dsl.Decls(
			dsl.InitProp{Name: "ReqB", Init: false},
		),
		dsl.Assert{Target: dsl.J("a", "j"), Prop: dsl.PR("AckB")},
		dsl.Retract{Prop: dsl.PR("ReqB")},
	).Guarded(formula.P("ReqB")))
	p.Instance("a", "TA").Instance("b", "TB")
	p.SetMain(dsl.Seq{dsl.Start{Instance: "a"}, dsl.Start{Instance: "b"}})
	return p
}

// NegativeInvariant builds a program whose declared invariant is violated at
// quiescence: a::j marks itself Done and notifies the monitor m::watch, but
// the notification sits in m's pending queue until m's next scheduling — so
// the configuration where Done holds and Busy does not is reachable (and is
// exactly what Done ⇒ Busy forbids). The paper's local-priority/pending
// semantics make this window real, not a checker artifact.
func NegativeInvariant() *dsl.Program {
	p := dsl.NewProgram()
	p.Type("TW").Junction("j", dsl.Def(
		dsl.Decls(
			dsl.InitProp{Name: "Go", Init: true},
			dsl.InitProp{Name: "Done", Init: false},
		),
		dsl.Retract{Prop: dsl.PR("Go")},
		dsl.Assert{Prop: dsl.PR("Done")},
		dsl.Assert{Target: dsl.J("m", "watch"), Prop: dsl.PR("Busy")},
	).Guarded(formula.P("Go")))
	p.Type("TM").Junction("watch", dsl.Def(
		dsl.Decls(
			dsl.InitProp{Name: "Busy", Init: false},
		),
		dsl.Retract{Prop: dsl.PR("Busy")},
	).Guarded(formula.P("Busy")))
	p.Instance("a", "TW").Instance("m", "TM")
	p.SetMain(dsl.Seq{dsl.Start{Instance: "a"}, dsl.Start{Instance: "m"}})
	p.Invariant("done-implies-busy",
		formula.Implies(formula.At("a::j", "Done"), formula.At("m::watch", "Busy")))
	return p
}

// Negatives returns the deliberately-broken example architectures: programs
// the checker must flag, each annotated with its expected verdict. They are
// kept out of Catalogue() — tools iterating the catalogue see only the
// paper's patterns — but csawc -check-all covers both sets.
func Negatives() []CatalogueEntry {
	return []CatalogueEntry{
		{
			Name:         "negative-deadlock",
			Doc:          "circular two-party wait: the request is sent after the wait for its acknowledgment",
			Build:        NegativeDeadlock,
			CheckVerdict: "deadlock",
			CheckNote:    "a::j blocks on wait[AckB]; b::j, the only AckB writer, is guarded on a request a::j never sent",
		},
		{
			Name:         "negative-invariant",
			Doc:          "Done asserted locally while the Busy notification is still pending at the monitor",
			Build:        NegativeInvariant,
			CheckVerdict: "invariant",
			CheckNote:    "done-implies-busy is false in the quiescent window before m::watch absorbs the pending Busy",
		},
	}
}
