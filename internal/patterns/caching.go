package patterns

import (
	"time"

	"csaw/internal/dsl"
	"csaw/internal/formula"
)

// Names of the caching architecture (Fig. 7).
const (
	// CacheInstance fronts requests and memoizes responses.
	CacheInstance = "Cache"
	// FunInstance computes the (pure) function being memoized.
	FunInstance = "Fun"
	// CacheJunction is the single junction of both instances.
	CacheJunction = "junction"
)

// CachingConfig parameterizes the application-specific caching layer. The
// cache store itself (sizes, eviction) lives in the host language — "the
// features of the cache ... are orthogonal to the architecture, and are
// therefore outside of the DSL's scope" (§7.2).
type CachingConfig struct {
	// Timeout is the failure deadline for the Cache↔Fun exchange.
	Timeout time.Duration
	// CheckCacheable classifies the current request
	// (⌊CheckCacheable⌉{Cacheable}): returns whether the cache may serve it.
	CheckCacheable func(ctx dsl.HostCtx) (bool, error)
	// LookupCache performs the cache look-up (⌊LookupCache⌉{Cached}): it
	// returns whether the response was found (and, on a hit, delivers the
	// response through the host context's application state).
	LookupCache func(ctx dsl.HostCtx) (bool, error)
	// CaptureRequest serializes the request for the Fun instance
	// (save(..., n)).
	CaptureRequest dsl.SourceFunc
	// DeliverResponse consumes Fun's response m at the cache front
	// (restore(m, ...)).
	DeliverResponse dsl.SinkFunc
	// UpdateCache stores the new response (⌊UpdateCache⌉).
	UpdateCache dsl.HostFunc
	// ComputeF is Fun's ⌊F⌉: consume the request, produce the response.
	ComputeF func(ctx dsl.HostCtx, req []byte) ([]byte, error)
	// Complain is the failure stub. Optional.
	Complain dsl.HostFunc
}

// Caching builds the Fig. 7 program: an inline cache that memoizes calls to
// a function computed by a separate instance.
func Caching(cfg CachingConfig) *dsl.Program {
	p := dsl.NewProgram()

	// def τCache :: (t)
	p.Type("tauCache").Junction(CacheJunction, dsl.Def(
		dsl.Decls(
			dsl.InitProp{Name: "Work", Init: false},
			dsl.InitProp{Name: "Cacheable", Init: false},
			dsl.InitProp{Name: "Cached", Init: false},
			dsl.InitProp{Name: "NewValue", Init: false},
			dsl.InitData{Name: "n"},
			dsl.InitData{Name: "m"},
		),
		// Reset per-request propositions: the junction serves many requests
		// over its lifetime, and Fig. 7's logic assumes they start false.
		dsl.Retract{Prop: dsl.PR("Cacheable")},
		dsl.Retract{Prop: dsl.PR("Cached")},
		dsl.Retract{Prop: dsl.PR("NewValue")},
		// ⌊CheckCacheable⌉{Cacheable}   (step ➊)
		dsl.Host{Label: "CheckCacheable", Writes: []string{"Cacheable"}, Fn: func(ctx dsl.HostCtx) error {
			ok, err := cfg.CheckCacheable(ctx)
			if err != nil {
				return err
			}
			return ctx.SetProp("Cacheable", ok)
		}},
		dsl.Case{
			Arms: []dsl.CaseArm{
				// Cacheable ⇒ ⌊LookupCache⌉{Cached}; next   (steps ➋–➍)
				dsl.Arm(formula.P("Cacheable"), dsl.TermNext,
					dsl.Host{Label: "LookupCache", Writes: []string{"Cached"}, Fn: func(ctx dsl.HostCtx) error {
						hit, err := cfg.LookupCache(ctx)
						if err != nil {
							return err
						}
						return ctx.SetProp("Cached", hit)
					}},
				),
				// ¬Cacheable ∨ (Cacheable ∧ ¬Cached) ⇒ call the function (step ➎)
				dsl.Arm(
					formula.Or(
						formula.Not(formula.P("Cacheable")),
						formula.And(formula.P("Cacheable"), formula.Not(formula.P("Cached"))),
					),
					dsl.TermNext,
					dsl.Save{Data: "n", From: cfg.CaptureRequest},
					dsl.OtherwiseT(
						dsl.Scope{Body: []dsl.Expr{
							dsl.Write{Data: "n", To: dsl.J(FunInstance, CacheJunction)},
							dsl.Assert{Target: dsl.J(FunInstance, CacheJunction), Prop: dsl.PR("Work")},
							dsl.Wait{Data: []string{"m"}, Cond: formula.Not(formula.P("Work"))},
							dsl.Restore{Data: "m", Into: cfg.DeliverResponse},
							dsl.Assert{Prop: dsl.PR("NewValue")},
						}},
						cfg.Timeout,
						complainOr(cfg.Complain),
					),
				),
				// Cacheable ∧ NewValue ⇒ ⌊UpdateCache⌉; break   (step ➏)
				dsl.Arm(
					formula.And(formula.P("Cacheable"), formula.P("NewValue")),
					dsl.TermBreak,
					dsl.Host{Label: "UpdateCache", Fn: orNop(cfg.UpdateCache)},
				),
			},
			Otherwise: []dsl.Expr{dsl.Skip{}},
		},
	))

	// def τFun :: (t) — τAuditing reused as τFun (Fig. 7 caption).
	p.Type("tauFun").Junction(CacheJunction, backJunction(backCfg{
		front:    CacheInstance + "::" + CacheJunction,
		timeout:  cfg.Timeout,
		handle:   cfg.ComputeF,
		complain: cfg.Complain,
	}))

	p.Instance(CacheInstance, "tauCache").Instance(FunInstance, "tauFun")
	// def main(t) ◀ start Cache(t) + start Fun(t)
	p.SetMain(dsl.Par{dsl.Start{Instance: CacheInstance}, dsl.Start{Instance: FunInstance}})
	return p
}

func orNop(f dsl.HostFunc) dsl.HostFunc {
	if f == nil {
		return func(dsl.HostCtx) error { return nil }
	}
	return f
}
