package patterns

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"csaw/internal/runtime"
)

// The migration equivalence suite: every deterministic catalogue entry is
// deployed across its two reference locations (CostPlacement), every
// instance is live-migrated to the other location while the workload keeps
// driving, and the quiescent KV state must be identical to a never-migrated
// control run — zero lost updates, no divergence.

// migratableEntries are the catalogue entries with schedule-independent
// drives (the same set the transport-determinism equivalence check uses);
// the failover entries depend on crash timing and are exercised by the
// runtime-level migration tests instead.
var migratableEntries = []string{"snapshot", "sharding", "parallel-sharding", "caching"}

// driveOnce performs one workload drive for an entry, non-fatally — it runs
// on goroutines racing a migration, so failures are returned, not asserted.
func driveOnce(ctx context.Context, name string, sys *runtime.System) error {
	switch name {
	case "snapshot":
		return sys.Invoke(ctx, ActInstance, SnapshotJunction)
	case "sharding", "parallel-sharding":
		return sys.Invoke(ctx, FrontInstance, ShardJunction)
	case "caching":
		return sys.Invoke(ctx, CacheInstance, CacheJunction)
	default:
		return fmt.Errorf("no drive defined for %q", name)
	}
}

// deployEntry builds a fresh two-location in-process deployment shaped by
// the entry's reference placement. Pins are deliberately not applied: the
// point is to move the instances.
func deployEntry(entry CatalogueEntry) (*runtime.Deployment, []string) {
	locSet := map[string]bool{}
	for _, loc := range entry.CostPlacement {
		locSet[loc] = true
	}
	locs := make([]string, 0, len(locSet))
	for loc := range locSet {
		locs = append(locs, loc)
	}
	sort.Strings(locs)
	dep := runtime.NewDeployment()
	for _, loc := range locs {
		dep.AddLocation(loc, nil)
	}
	insts := make([]string, 0, len(entry.CostPlacement))
	for inst, loc := range entry.CostPlacement {
		dep.Place(inst, loc)
		insts = append(insts, inst)
	}
	sort.Strings(insts)
	return dep, insts
}

// TestMigrationEquivalence runs each deterministic entry twice on identical
// two-location deployments — once migrating every instance to the opposite
// location mid-workload, once untouched — and compares quiescent state.
func TestMigrationEquivalence(t *testing.T) {
	const drivesPerPhase = 2
	for _, name := range migratableEntries {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			entry, ok := CatalogueEntryByName(name)
			if !ok {
				t.Fatalf("catalogue entry %q missing", name)
			}

			run := func(migrate bool) string {
				dep, insts := deployEntry(entry)
				sys := startSystem(t, entry.Build(), runtime.Options{
					Deploy:     dep,
					AckTimeout: 10 * time.Second,
				})
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				if err := sys.RunMain(ctx); err != nil {
					t.Fatal(err)
				}
				for _, inst := range insts {
					var wg sync.WaitGroup
					driveErr := make(chan error, 1)
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < drivesPerPhase; i++ {
							if err := driveOnce(ctx, name, sys); err != nil {
								driveErr <- fmt.Errorf("drive %d during %s phase: %w", i, inst, err)
								return
							}
						}
					}()
					if migrate {
						cur := dep.LocationOf(inst)
						var dest string
						for _, loc := range dep.Locations() {
							if loc != cur {
								dest = loc
								break
							}
						}
						if err := sys.MigrateInstance(inst, dest); err != nil {
							t.Fatalf("migrate %s %s→%s: %v", inst, cur, dest, err)
						}
					}
					wg.Wait()
					select {
					case err := <-driveErr:
						t.Fatal(err)
					default:
					}
				}
				state := quiesce(t, sys)
				for _, loc := range dep.Locations() {
					if st := dep.Net(loc).Stats(); !st.Conserved() {
						t.Fatalf("location %s transport counters not conserved: %+v", loc, st)
					}
				}
				return state
			}

			control := run(false)
			migrated := run(true)
			if control != migrated {
				t.Errorf("quiescent KV state diverges after live migration:\n--- control ---\n%s--- migrated ---\n%s", control, migrated)
			}
		})
	}
}
