package patterns

import (
	"fmt"
	"time"

	"csaw/internal/dsl"
	"csaw/internal/formula"
	"csaw/internal/runtime"
)

// Names of the fail-over architecture (§7.3, Figs. 8–14).
const (
	// FrontEnd is the single front-end instance f.
	FrontEnd = "f"
	// FrontBackJunction is τf::b, the backend-facing junction.
	FrontBackJunction = "b"
	// FrontClientJunction is τf::c, the client-facing junction.
	FrontClientJunction = "c"
	// ServeJunction, StartupJunction and ReactivateJunction are the three
	// back-end junctions of Fig. 8.
	ServeJunction      = "serve"
	StartupJunction    = "startup"
	ReactivateJunction = "reactivate"
)

// FailoverBackend names the i-th back-end instance (0-based) — b1, b2, ...
func FailoverBackend(i int) string { return fmt.Sprintf("b%d", i+1) }

// FailoverMode selects between the paper's §7.3 design points.
type FailoverMode int

const (
	// WarmAll engages every registered back-end per request (the paper's
	// primary design: implicit fail-over between warm replicas).
	WarmAll FailoverMode = iota
	// Sequential tries back-ends in order and returns on the first response
	// — the paper's suggested improvement "(i) less conservative, and lower
	// latency, by not requiring all the back-ends to respond ... (ii) use
	// less network overhead by only having a single back-end return a
	// pre-response" (§7.3). Expressed as a `for ... otherwise[t]` chain.
	Sequential
)

// FailoverConfig parameterizes the warm-replica fail-over architecture. The
// same architecture expression applies to any application that can capture
// and restore its state (the paper applies it to both Redis and Suricata).
type FailoverConfig struct {
	// N is the number of back-end replicas (≥ 2 for actual fail-over).
	N int
	// Mode selects the engagement strategy (default WarmAll).
	Mode FailoverMode
	// Timeout is the t parameter: the failure-detection deadline.
	Timeout time.Duration
	// ReactivateTimeout is the back-end inactivity timeout (main passes 3·t
	// in Fig. 12). Zero means 3·Timeout.
	ReactivateTimeout time.Duration
	// RegistrationBackoff paces a not-yet-active back-end's registration
	// attempts. Zero means Timeout.
	RegistrationBackoff time.Duration

	// InitialState produces the canonical system state at cold start
	// (evaluated at τf::b while Starting).
	InitialState dsl.SourceFunc
	// PrepareRequest is ⌊H1⌉ + save(..., req) at τf::c: serialize the
	// pending client request.
	PrepareRequest dsl.SourceFunc
	// ApplyStateAtFront consumes the canonical state at τf::c
	// (restore(state, ...)).
	ApplyStateAtFront dsl.SinkFunc
	// ApplyStateAtBack consumes the canonical state at τb::serve when a
	// back-end is (re)initialized.
	ApplyStateAtBack dsl.SinkFunc
	// HandleRequest is ⌊H2⌉ at τb::serve: process the request, produce the
	// pre-response.
	HandleRequest func(ctx dsl.HostCtx, req []byte) ([]byte, error)
	// DeliverResponse is restore(preresp, ...) + ⌊H3⌉ at τf::c: hand the
	// response to the client.
	DeliverResponse dsl.SinkFunc
	// CaptureState produces the new canonical state at τf::c after the
	// request completes (save(..., state)).
	CaptureState dsl.SourceFunc
	// Complain is the failure stub. Optional.
	Complain dsl.HostFunc
}

func (cfg *FailoverConfig) fill() {
	if cfg.ReactivateTimeout <= 0 {
		cfg.ReactivateTimeout = 3 * cfg.Timeout
	}
	if cfg.RegistrationBackoff <= 0 {
		cfg.RegistrationBackoff = cfg.Timeout
	}
}

// Failover builds the §7.3 program: a front-end with client- and
// backend-facing junctions, and N warm back-end replicas that register,
// serve and re-register after inactivity. Every registered back-end receives
// every request (implicit fail-over between warm replicas); the system
// answers as long as at least one back-end responds.
func Failover(cfg FailoverConfig) *dsl.Program {
	cfg.fill()
	p := dsl.NewProgram()

	backends := make([]string, cfg.N)
	for i := range backends {
		backends[i] = FailoverBackend(i) + "::" + ServeJunction
	}
	fb := dsl.J(FrontEnd, FrontBackJunction)
	fc := dsl.J(FrontEnd, FrontClientJunction)

	// def Initialize(tgt) — Fig. 12: called by τf::b to initialize a
	// newly-registered backend tgt.
	p.Func("Initialize", func(args ...string) []dsl.Expr {
		b := args[0]
		bref := dsl.J(splitInst(b), splitJn(b))
		return []dsl.Expr{
			dsl.Verify{Cond: formula.And(formula.Not(formula.P("Activating")), formula.Not(formula.P("Active")))},
			dsl.Write{Data: "state", To: bref},
			dsl.Assert{Target: bref, Prop: dsl.PR("Activating")},
			dsl.Wait{Cond: formula.Not(formula.P("Activating"))},
			dsl.Assert{Target: bref, Prop: dsl.PR("Active")},
			// "If we fail on this, the backend won't be used by f::c, and the
			// backend will reattempt reactivation later" (Fig. 12).
			dsl.Assert{Target: fc, Prop: dsl.PRAt("Backend", b)},
			dsl.Retract{Prop: dsl.PR("Active")},
		}
	})

	// --- τf::b (Fig. 10) ------------------------------------------------------
	fbDecls := dsl.Decls(
		dsl.InitData{Name: "state"},
		dsl.InitProp{Name: "Starting", Init: true},
		dsl.InitProp{Name: "Active", Init: false},
		dsl.InitProp{Name: "Activating", Init: false},
		dsl.InitProp{Name: "Retried", Init: false},
		dsl.InitProp{Name: "Call", Init: false},
		dsl.InitProp{Name: "HaveAtLeastOne", Init: false},
	)
	// Backend[b̃] is asserted *at f::c* (inside Initialize) and consumed there;
	// f::b itself never reads it, so the family is declared at f::c only.
	fbDecls = append(fbDecls, dsl.ForProps("InitBackend", backends, false)...)

	startingArm := []dsl.Expr{
		// Cold start: capture the initial canonical state once.
		dsl.If{
			Cond: formula.Not(formula.P("StateReady")),
			Then: dsl.Seq{
				dsl.Save{Data: "state", From: cfg.InitialState},
				dsl.Assert{Prop: dsl.PR("StateReady")},
			},
		},
		// for b̃ ∈ backends + ⟨wait [] InitBackend[b̃] otherwise[t] skip⟩
		dsl.ForExpr(dsl.OpPar, backends, 0, func(b string) dsl.Expr {
			return dsl.Scope{Body: []dsl.Expr{
				dsl.OtherwiseT(dsl.Wait{Cond: formula.P(dsl.IndexedName("InitBackend", b))}, cfg.Timeout, dsl.Skip{}),
			}}
		}),
		dsl.Retract{Prop: dsl.PR("HaveAtLeastOne")},
		// for b̃ ∈ backends ; if InitBackend[b̃] then ⟨|Initialize; assert HaveAtLeastOne|⟩ otherwise skip
		dsl.ForExpr(dsl.OpSeq, backends, 0, func(b string) dsl.Expr {
			return dsl.If{
				Cond: formula.P(dsl.IndexedName("InitBackend", b)),
				Then: dsl.OtherwiseT(
					dsl.Txn{Body: []dsl.Expr{
						p.CallF("Initialize", b),
						// "Next line relies on idempotence."
						dsl.Assert{Prop: dsl.PR("HaveAtLeastOne")},
					}},
					cfg.Timeout,
					dsl.Skip{},
				),
			}
		}),
		dsl.If{Cond: formula.Not(formula.P("HaveAtLeastOne")), Then: complainOr(cfg.Complain)},
		dsl.Retract{Prop: dsl.PR("Retried")},
		dsl.Case{
			Arms: []dsl.CaseArm{
				dsl.Arm(formula.P("Starting"), dsl.TermReconsider,
					// Progress f::c beyond Starting.
					dsl.OtherwiseT(
						dsl.Retract{Target: fc, Prop: dsl.PR("Starting")},
						cfg.Timeout,
						dsl.If{
							Cond: formula.Not(formula.P("Retried")),
							Then: dsl.Assert{Prop: dsl.PR("Retried")},
							Else: complainOr(cfg.Complain),
						},
					),
				),
			},
			Otherwise: []dsl.Expr{dsl.Skip{}},
		},
	}

	servingArms := []dsl.CaseArm{
		dsl.Arm(formula.P("Call"), dsl.TermBreak,
			// A transaction block (⟨|E|⟩) rather than Fig. 10's plain fate
			// scope: if the client round fails mid-exchange the local Active
			// assertion must roll back, or verify ¬Active wedges every later
			// Call and Initialize ("Here could implement more robust
			// handling", Fig. 10).
			dsl.OtherwiseT(
				dsl.Txn{Body: []dsl.Expr{
					dsl.Verify{Cond: formula.Not(formula.P("Active"))},
					dsl.Write{Data: "state", To: fc},
					dsl.Assert{Target: fc, Prop: dsl.PR("Active")},
					dsl.Wait{Data: []string{"state"}, Cond: formula.Not(formula.P("Active"))},
				}},
				cfg.Timeout,
				complainOr(cfg.Complain),
			),
			dsl.Retract{Prop: dsl.PR("Call")},
		),
	}
	// for b̃ ∈ backends: ¬Call ∧ InitBackend[b̃] ⇒ Initialize(b̃); retract InitBackend[b̃]
	servingArms = append(servingArms, dsl.ForArms(backends, func(b string) dsl.CaseArm {
		return dsl.Arm(
			formula.And(formula.Not(formula.P("Call")), formula.P(dsl.IndexedName("InitBackend", b))),
			dsl.TermBreak,
			dsl.OtherwiseT(p.CallF("Initialize", b), cfg.Timeout, dsl.Skip{}),
			dsl.Retract{Prop: dsl.PRAt("InitBackend", b)},
		)
	})...)

	fbDecls = append(fbDecls, dsl.InitProp{Name: "StateReady", Init: false})
	fbGuard := formula.Or(
		formula.P("Starting"),
		formula.P("Call"),
		dsl.ForAny(backends, func(b string) formula.Formula {
			return formula.P(dsl.IndexedName("InitBackend", b))
		}),
	)
	p.Type("tauF").Junction(FrontBackJunction, dsl.Def(
		fbDecls,
		dsl.If{
			Cond: formula.P("Starting"),
			Then: dsl.Seq(startingArm),
			Else: dsl.Case{Arms: servingArms, Otherwise: []dsl.Expr{dsl.Skip{}}},
		},
	).Guarded(fbGuard))

	// --- τf::c (Fig. 13) ------------------------------------------------------
	fcDecls := dsl.Decls(
		dsl.InitProp{Name: "Starting", Init: true},
		dsl.InitProp{Name: "Active", Init: false},
		dsl.InitProp{Name: "Req", Init: false},
		dsl.InitProp{Name: "Call", Init: false},
		dsl.InitProp{Name: "HaveAtLeastOne", Init: false},
		dsl.InitData{Name: "state"},
		dsl.InitData{Name: "req"},
		dsl.InitData{Name: "preresp"},
	)
	fcDecls = append(fcDecls, dsl.ForProps("Backend", backends, false)...)
	fcDecls = append(fcDecls, dsl.ForProps("Running", backends, false)...)

	engage := func(b string) dsl.Expr {
		bref := dsl.J(splitInst(b), splitJn(b))
		return dsl.If{
			Cond: formula.P(dsl.IndexedName("Backend", b)),
			Then: dsl.OtherwiseT(
				dsl.Txn{Body: []dsl.Expr{
					// verify S(b̃) → b̃@Active ∧ ¬b̃@Running[b̃]
					dsl.Verify{Cond: formula.Implies(
						runtime.Running(b),
						formula.And(
							formula.At(b, "Active"),
							formula.Not(formula.At(b, dsl.IndexedName("Running", b))),
						),
					)},
					dsl.Write{Data: "req", To: bref},
					dsl.Assert{Target: bref, Prop: dsl.PRAt("Running", b)},
					dsl.Wait{Data: []string{"preresp"}, Cond: formula.Not(formula.P(dsl.IndexedName("Running", b)))},
					dsl.Assert{Prop: dsl.PR("HaveAtLeastOne")},
				}},
				cfg.Timeout,
				// otherwise[t] retract [] Backend[b̃]
				dsl.Retract{Prop: dsl.PRAt("Backend", b)},
			),
		}
	}

	engageOnce := func(b string) dsl.Expr {
		bref := dsl.J(splitInst(b), splitJn(b))
		// Sequential mode: a branch must FAIL (not skip) when the backend is
		// unregistered or unresponsive, so the otherwise-chain falls through
		// to the next backend; the failed backend is deregistered first.
		return dsl.Scope{Body: []dsl.Expr{
			dsl.Verify{Cond: formula.P(dsl.IndexedName("Backend", b))},
			dsl.OtherwiseT(
				dsl.Txn{Body: []dsl.Expr{
					dsl.Write{Data: "req", To: bref},
					dsl.Assert{Target: bref, Prop: dsl.PRAt("Running", b)},
					dsl.Wait{Data: []string{"preresp"}, Cond: formula.Not(formula.P(dsl.IndexedName("Running", b)))},
					dsl.Assert{Prop: dsl.PR("HaveAtLeastOne")},
				}},
				cfg.Timeout,
				dsl.Seq{
					dsl.Retract{Prop: dsl.PRAt("Backend", b)},
					// Propagate the failure into the otherwise chain.
					dsl.Verify{Cond: formula.FalseF{}},
				},
			),
		}}
	}
	var fanOut dsl.Expr
	if cfg.Mode == Sequential {
		fanOut = dsl.OtherwiseT(
			dsl.ForExpr(dsl.OpOtherwise, backends, cfg.Timeout, engageOnce),
			cfg.Timeout,
			dsl.Skip{}, // no backend answered; HaveAtLeastOne stays false
		)
	} else {
		fanOut = dsl.ForExpr(dsl.OpPar, backends, 0, engage)
	}

	// guard ¬Starting ∧ Req — "Req is asserted externally to process client
	// request" (inject with runtime.Junction.InjectProp).
	p.Type("tauF").Junction(FrontClientJunction, dsl.Def(
		fcDecls,
		dsl.Retract{Prop: dsl.PR("Req")},
		dsl.Verify{Cond: formula.Not(formula.P("Call"))},
		dsl.OtherwiseT(
			dsl.Scope{Body: []dsl.Expr{
				dsl.Assert{Target: fb, Prop: dsl.PR("Call")},
				dsl.Wait{Data: []string{"state"}, Cond: formula.P("Active")},
			}},
			cfg.Timeout,
			complainOr(cfg.Complain),
		),
		dsl.Restore{Data: "state", Into: cfg.ApplyStateAtFront},
		dsl.Retract{Prop: dsl.PR("Call")},
		// ⌊H1⌉; save(..., req)
		dsl.Save{Data: "req", From: cfg.PrepareRequest},
		dsl.Retract{Prop: dsl.PR("HaveAtLeastOne")},
		// WarmAll: for b̃ ∈ backends + engage(b̃);
		// Sequential: for b̃ ∈ backends otherwise[t] engageOnce(b̃).
		fanOut,
		dsl.If{Cond: formula.Not(formula.P("HaveAtLeastOne")), Then: complainOr(cfg.Complain)},
		dsl.Verify{Cond: formula.P("HaveAtLeastOne")},
		dsl.Restore{Data: "preresp", Into: cfg.DeliverResponse},
		dsl.Save{Data: "state", From: cfg.CaptureState},
		dsl.OtherwiseT(
			dsl.Scope{Body: []dsl.Expr{
				dsl.Write{Data: "state", To: fb},
				// ⌊H3⌉ happens inside DeliverResponse; release f::b.
				dsl.Retract{Target: fb, Prop: dsl.PR("Active")},
			}},
			cfg.Timeout,
			complainOr(cfg.Complain),
		),
	).Guarded(formula.And(formula.Not(formula.P("Starting")), formula.P("Req"))).ManuallyScheduled())

	// --- τb::serve (Fig. 14) --------------------------------------------------
	p.Type("tauB").Junction(ServeJunction, dsl.Def(
		dsl.Decls(
			dsl.InitProp{Name: "Active", Init: false},
			dsl.InitProp{Name: "Activating", Init: false},
			// RecentlyActive lives at b::reactivate (serve only asserts it
			// there); no local declaration needed.
			dsl.InitData{Name: "preresp"},
			dsl.InitData{Name: "state"},
			dsl.InitData{Name: "req"},
			dsl.InitProp{Name: "Running[me::junction]", Init: false},
		),
		dsl.Case{
			Arms: []dsl.CaseArm{
				dsl.Arm(formula.P("Activating"), dsl.TermBreak,
					dsl.Restore{Data: "state", Into: cfg.ApplyStateAtBack},
					// "If the remote retraction fails, then b::reactivate
					// will eventually retry the startup."
					dsl.OtherwiseT(
						dsl.Retract{Target: fb, Prop: dsl.PR("Activating")},
						cfg.Timeout,
						dsl.Retract{Prop: dsl.PR("Activating")},
					),
				),
			},
			Otherwise: []dsl.Expr{
				dsl.Assert{Target: dsl.MeI(ReactivateJunction), Prop: dsl.PR("RecentlyActive")},
				dsl.Restore{Data: "req", Writes: []string{"preresp"}, Into: func(ctx dsl.HostCtx, req []byte) error {
					resp, err := cfg.HandleRequest(ctx, req)
					if err != nil {
						return err
					}
					return ctx.Save("preresp", resp)
				}},
				dsl.OtherwiseT(
					dsl.Scope{Body: []dsl.Expr{
						dsl.Write{Data: "preresp", To: fc},
						dsl.Retract{Target: fc, Prop: dsl.PRAt("Running", "me::junction")},
					}},
					cfg.Timeout,
					dsl.Retract{Prop: dsl.PR("Active")},
				),
			},
		},
	).Guarded(formula.Or(
		formula.P("Activating"),
		formula.And(formula.P("Active"), formula.P(dsl.IndexedName("Running", "me::junction"))),
	)))

	// --- τb::startup (Fig. 14) ------------------------------------------------
	// InitBackend[me::instance::serve] is declared at f::b (the assert's
	// target), not here: startup holds no state of its own.
	p.Type("tauB").Junction(StartupJunction, dsl.Def(
		nil,
		dsl.OtherwiseT(
			dsl.Assert{Target: fb, Prop: dsl.PRAt("InitBackend", "me::instance::serve")},
			cfg.Timeout,
			dsl.Skip{},
		),
		// Pace re-registration attempts: sleep(backoff) expressed in the DSL
		// as a wait on false with a timeout.
		dsl.OtherwiseT(dsl.Wait{Cond: formula.FalseF{}}, cfg.RegistrationBackoff, dsl.Skip{}),
	).Guarded(formula.Not(formula.At("me::instance::serve", "Active"))))

	// --- τb::reactivate (Fig. 14) ----------------------------------------------
	p.Type("tauB").Junction(ReactivateJunction, dsl.Def(
		dsl.Decls(
			// Active/Activating belong to b::serve, where the timeout handler
			// retracts them; reactivate only owns the liveness bit.
			dsl.InitProp{Name: "RecentlyActive", Init: false},
		),
		dsl.Retract{Prop: dsl.PR("RecentlyActive")},
		dsl.OtherwiseT(
			dsl.Wait{Cond: formula.P("RecentlyActive")},
			cfg.ReactivateTimeout,
			dsl.Scope{Body: []dsl.Expr{
				dsl.Retract{Target: dsl.MeI(ServeJunction), Prop: dsl.PR("Active")},
				dsl.Retract{Target: dsl.MeI(ServeJunction), Prop: dsl.PR("Activating")},
			}},
		),
	).Guarded(formula.TrueF()))

	// Instances and main (Fig. 12).
	p.Instance(FrontEnd, "tauF")
	starts := dsl.Par{}
	for i := 0; i < cfg.N; i++ {
		p.Instance(FailoverBackend(i), "tauB")
		starts = append(starts, dsl.Start{Instance: FailoverBackend(i)})
	}
	starts = append(starts, dsl.Start{Instance: FrontEnd})
	p.SetMain(starts)
	return p
}
