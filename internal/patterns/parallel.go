package patterns

import (
	"fmt"
	"time"

	"csaw/internal/dsl"
	"csaw/internal/formula"
)

// ParallelShardingConfig parameterizes the §7.1 architecture: sharding to a
// runtime-chosen *set* of back-end targets in parallel, tracking which
// back-ends are still usable and alerting when none are.
type ParallelShardingConfig struct {
	// N is the number of declared back-ends.
	N int
	// Timeout is the per-backend failure deadline.
	Timeout time.Duration
	// ChooseSet selects the subset of back-ends to engage for this request
	// (the ⌊Choose()⌉{tgt} block populating the tgt subset). Indices are
	// 0-based.
	ChooseSet func(ctx dsl.HostCtx) ([]int, error)
	// CaptureRequest serializes the request (save(..., n)).
	CaptureRequest dsl.SourceFunc
	// HandleRequest processes the request at a back-end, returning the
	// serialized response.
	HandleRequest func(ctx dsl.HostCtx, req []byte) ([]byte, error)
	// Complain fires when no viable back-end remains ("Complain if not one
	// backend is viable", Fig. 6). Optional.
	Complain dsl.HostFunc
}

// ParallelSharding builds the Fig. 6 program: the front-end engages every
// chosen back-end in parallel inside per-backend transactions; a back-end
// that fails its exchange is marked inactive (retract ActiveBackend[b̃]) and
// HaveAtLeastOne records whether any back-end responded.
func ParallelSharding(cfg ParallelShardingConfig) *dsl.Program {
	p := dsl.NewProgram()

	backs := make([]string, cfg.N)
	for i := range backs {
		backs[i] = BackInstance(i) + "::" + ShardJunction
	}

	decls := dsl.Decls(
		// Fig. 6 never delivers responses to the front, so unlike plain
		// sharding there is no m slot here — only the outgoing request n.
		dsl.InitData{Name: "n"},
		// | set Backs   (➊)
		dsl.DeclSet{Name: "Backs", Elems: backs},
		// | subset tgt of Backs   (➌)
		dsl.DeclSubset{Name: "tgt", Of: "Backs"},
		// | init prop ¬HaveAtLeastOne
		dsl.InitProp{Name: "HaveAtLeastOne", Init: false},
	)
	// | for t̃gt ∈ Backs init prop ¬ActiveBackend[t̃gt]   (➋) — initialized
	// true here: a backend is presumed usable until an exchange fails.
	decls = append(decls, dsl.ForProps("ActiveBackend", backs, true)...)
	// Per-backend Work propositions (the §7.1 refinement "making Work into a
	// set indexed by tgt").
	decls = append(decls, dsl.ForProps("Work", backs, false)...)

	// The per-backend engagement, unrolled with `for b̃ ∈ tgt +` (➍). The
	// subset is runtime-chosen, so each unrolled branch first checks
	// membership through the host-maintained ActiveBackend/Engage props.
	engage := func(b string) dsl.Expr {
		return dsl.If{
			Cond: formula.And(formula.P(dsl.IndexedName("Engage", b)), formula.P(dsl.IndexedName("ActiveBackend", b))),
			Then: dsl.OtherwiseT(
				// ⟨| write(n, b̃); assert [b̃] Work[b̃]; wait [] ¬Work[b̃];
				//    assert [] HaveAtLeastOne |⟩   (➎, ➏) — Work is a set
				// indexed by target, per §7.1's refinement.
				dsl.Txn{Body: []dsl.Expr{
					dsl.Write{Data: "n", To: dsl.JunctionRef{Instance: splitInst(b), Junction: splitJn(b)}},
					dsl.Assert{Target: dsl.JunctionRef{Instance: splitInst(b), Junction: splitJn(b)}, Prop: dsl.PRAt("Work", b)},
					dsl.Wait{Cond: formula.Not(formula.P(dsl.IndexedName("Work", b)))},
					dsl.Assert{Prop: dsl.PR("HaveAtLeastOne")},
				}},
				cfg.Timeout,
				// otherwise[t] retract [] ActiveBackend[b̃]
				dsl.Retract{Prop: dsl.PRAt("ActiveBackend", b)},
			),
		}
	}

	decls = append(decls, dsl.ForProps("Engage", backs, false)...)

	p.Type("tauFront").Junction(ShardJunction, dsl.Def(
		decls,
		// ⌊Choose();⌉{tgt, Engage[...]}
		dsl.Host{Label: "Choose", Writes: chooseWrites(backs), Fn: func(ctx dsl.HostCtx) error {
			idxs, err := cfg.ChooseSet(ctx)
			if err != nil {
				return err
			}
			elems := make([]string, 0, len(idxs))
			chosen := map[int]bool{}
			for _, i := range idxs {
				if i < 0 || i >= cfg.N {
					return fmt.Errorf("patterns: ChooseSet index %d of %d", i, cfg.N)
				}
				elems = append(elems, backs[i])
				chosen[i] = true
			}
			if err := ctx.SetSubset("tgt", elems); err != nil {
				return err
			}
			for i, b := range backs {
				if err := ctx.SetProp(dsl.IndexedName("Engage", b), chosen[i]); err != nil {
					return err
				}
			}
			return nil
		}},
		// save(..., n)
		dsl.Save{Data: "n", From: cfg.CaptureRequest},
		// retract [] HaveAtLeastOne
		dsl.Retract{Prop: dsl.PR("HaveAtLeastOne")},
		// for b̃ ∈ tgt + ...
		dsl.ForExpr(dsl.OpPar, backs, cfg.Timeout, engage),
		// if ¬HaveAtLeastOne complain()
		dsl.If{
			Cond: formula.Not(formula.P("HaveAtLeastOne")),
			Then: complainOr(cfg.Complain),
		},
	))

	// Back-ends: τAuditing-style, retracting the indexed Work at the front.
	p.Type("tauBack").Junction(ShardJunction, parallelBackJunction(cfg))

	p.Instance(FrontInstance, "tauFront")
	starts := dsl.Par{dsl.Start{Instance: FrontInstance}}
	for i := 0; i < cfg.N; i++ {
		p.Instance(BackInstance(i), "tauBack")
		starts = append(starts, dsl.Start{Instance: BackInstance(i)})
	}
	p.SetMain(starts)
	return p
}

// chooseWrites lists the names the Choose block may write: the subset plus
// the Engage proposition family.
func chooseWrites(backs []string) []string {
	out := []string{"tgt"}
	for _, b := range backs {
		out = append(out, dsl.IndexedName("Engage", b))
	}
	return out
}

// parallelBackJunction handles one request and retracts the *indexed* Work
// proposition at the front (Work[me::junction]).
func parallelBackJunction(cfg ParallelShardingConfig) *dsl.JunctionDef {
	return dsl.Def(
		dsl.Decls(
			dsl.InitProp{Name: "Work[me::junction]", Init: false},
			dsl.InitData{Name: "n"},
			dsl.InitData{Name: "m"},
		),
		dsl.Restore{Data: "n", Writes: []string{"m"}, Into: func(ctx dsl.HostCtx, req []byte) error {
			resp, err := cfg.HandleRequest(ctx, req)
			if err != nil {
				return err
			}
			return ctx.Save("m", resp)
		}},
		dsl.OtherwiseT(
			dsl.Retract{
				Target: dsl.J(FrontInstance, ShardJunction),
				Prop:   dsl.PRAt("Work", "me::junction"),
			},
			cfg.Timeout,
			complainOr(cfg.Complain),
		),
	).Guarded(formula.P(dsl.IndexedName("Work", "me::junction")))
}

func splitInst(fq string) string { i, _ := splitFQ(fq); return i }
func splitJn(fq string) string   { _, j := splitFQ(fq); return j }
