package patterns

import (
	"context"
	"strings"
	"testing"
	"time"

	"csaw/internal/obsv"
	"csaw/internal/runtime"
)

// TestBatchingEquivalence is the semantic gate for the pipelined remote-
// update plane: every catalogue architecture, driven deterministically, must
// reach the identical quiescent KV state and the identical set of failing
// junctions with batching on (per-pair ack windows, cumulative acks, batch
// KV application — the default) and off (Options.DisableBatching, the seed's
// one-round-trip-per-update path), in both execution modes. Run under -race
// in CI.
func TestBatchingEquivalence(t *testing.T) {
	run := func(t *testing.T, entry CatalogueEntry, interpreted, disableBatching bool) equivResult {
		t.Helper()
		sys := startSystem(t, entry.Build(), runtime.Options{
			DisableCompiledPlan: interpreted,
			DisableBatching:     disableBatching,
			Trace:               obsv.NewRingSink(8192),
		})
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := sys.RunMain(ctx); err != nil {
			t.Fatal(err)
		}
		driveEntry(ctx, t, entry.Name, sys)
		return equivResult{
			state:   quiesce(t, sys),
			drivers: driverErrorJunctions(sys),
		}
	}
	for _, entry := range Catalogue() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			t.Parallel()
			base := run(t, entry, false, false)
			for _, v := range []struct {
				name                         string
				interpreted, disableBatching bool
			}{
				{"compiled/unbatched", false, true},
				{"interpreted/batched", true, false},
				{"interpreted/unbatched", true, true},
			} {
				got := run(t, entry, v.interpreted, v.disableBatching)
				if got.state != base.state {
					t.Errorf("%s: quiescent KV state diverges from compiled/batched:\n--- compiled/batched ---\n%s--- %s ---\n%s",
						v.name, base.state, v.name, got.state)
				}
				if strings.Join(got.drivers, ",") != strings.Join(base.drivers, ",") {
					t.Errorf("%s: driver-error junctions diverge: base=%v got=%v", v.name, base.drivers, got.drivers)
				}
			}
		})
	}
}
