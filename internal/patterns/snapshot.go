// Package patterns contains the reusable C-Saw architecture descriptions of
// the paper: remote snapshots (§5.1, use-cases ② and ③ of Fig. 1), N-ary
// sharding (§5.2, use-case ④), parallel sharding (§7.1), caching (§7.2,
// use-case ⑤), fail-over (§7.3, use-case ①) and watched fail-over (§7.4).
//
// Each builder returns a complete dsl.Program parameterized only by host
// hooks (the ⌊H⌉ blocks) — the same architecture expression is applied
// unchanged to mini-Redis, mini-cURL and mini-Suricata by the evaluation
// harness, reproducing the paper's reusability finding ("our prototype
// reused reconfiguration logic between Redis and Suricata", §12).
package patterns

import (
	"time"

	"csaw/internal/dsl"
	"csaw/internal/formula"
)

// Instance and junction names used by the snapshot architecture (Fig. 4).
const (
	// ActInstance is the application-side instance.
	ActInstance = "Act"
	// AudInstance is the remote auditing/logging instance.
	AudInstance = "Aud"
	// SnapshotJunction is the single junction of both instances.
	SnapshotJunction = "junction"
)

// SnapshotConfig parameterizes the remote-snapshot architecture.
type SnapshotConfig struct {
	// Timeout is the t parameter of Fig. 4: failure-awareness deadline for
	// the write/assert/wait exchange and the auditor's retraction.
	Timeout time.Duration
	// Capture produces the serialized application state (the ⌊H1⌉;
	// save(...,n) pair of Fig. 4).
	Capture dsl.SourceFunc
	// Apply consumes the state at the auditor (restore(n,...); ⌊H2⌉).
	Apply dsl.SinkFunc
	// Complain is invoked on unrecoverable failure (the complain() stub).
	// Optional.
	Complain dsl.HostFunc
}

func complainOr(f dsl.HostFunc) dsl.Expr {
	if f == nil {
		f = func(dsl.HostCtx) error { return nil }
	}
	return dsl.Host{Label: "complain", Fn: f}
}

// Snapshot builds the Fig. 4 program: a one-time remote snapshot from Act to
// Aud with failure-awareness (timeouts) and retry-based tolerance. Invoking
// Act's junction repeatedly yields the continuous-snapshot variant
// (use-case ③): "This architecture can be reused for continuous remote
// snapshots if we repeatedly invoke Act and Aud" (§5.1).
func Snapshot(cfg SnapshotConfig) *dsl.Program {
	p := dsl.NewProgram()

	// def τActual :: (t)
	p.Type("tauActual").Junction(SnapshotJunction, dsl.Def(
		dsl.Decls(
			dsl.InitProp{Name: "Work", Init: false},
			dsl.InitData{Name: "n"},
		),
		// ⌊H1⌉; save(..., n);
		dsl.Save{Data: "n", From: cfg.Capture},
		// ⟨write(n, Aud); assert [Aud] Work; wait [] ¬Work⟩ otherwise[t] complain()
		dsl.OtherwiseT(
			dsl.Scope{Body: []dsl.Expr{
				dsl.Write{Data: "n", To: dsl.J(AudInstance, SnapshotJunction)},
				dsl.Assert{Target: dsl.J(AudInstance, SnapshotJunction), Prop: dsl.PR("Work")},
				dsl.Wait{Cond: formula.Not(formula.P("Work"))},
			}},
			cfg.Timeout,
			complainOr(cfg.Complain),
		),
	))

	// def τAuditing :: (t)
	p.Type("tauAuditing").Junction(SnapshotJunction, dsl.Def(
		dsl.Decls(
			dsl.InitProp{Name: "Work", Init: false},
			dsl.InitProp{Name: "Retried", Init: false},
			dsl.InitData{Name: "n"},
		),
		// restore(n, ...); ⌊H2⌉;
		dsl.Restore{Data: "n", Into: cfg.Apply},
		// retract [] Retried;  (reset on every scheduling, Fig. 4 note ➍)
		dsl.Retract{Prop: dsl.PR("Retried")},
		dsl.Case{
			Arms: []dsl.CaseArm{
				dsl.Arm(formula.P("Work"), dsl.TermReconsider,
					dsl.OtherwiseT(
						dsl.Retract{Target: dsl.J(ActInstance, SnapshotJunction), Prop: dsl.PR("Work")},
						cfg.Timeout,
						dsl.If{
							Cond: formula.Not(formula.P("Retried")),
							Then: dsl.Assert{Prop: dsl.PR("Retried")},
							Else: complainOr(cfg.Complain),
						},
					),
				),
			},
			Otherwise: []dsl.Expr{dsl.Skip{}},
		},
	).Guarded(formula.P("Work")))

	p.Instance(ActInstance, "tauActual").Instance(AudInstance, "tauAuditing")
	// def main(t) ◀ start Act(t) + start Aud(t)
	p.SetMain(dsl.Par{dsl.Start{Instance: ActInstance}, dsl.Start{Instance: AudInstance}})
	return p
}
