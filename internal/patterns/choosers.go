package patterns

import (
	"fmt"

	"csaw/internal/dsl"
	"csaw/internal/workload"
)

// KeyHashChooser implements the paper's key-based sharding (§5.2, §10.1):
// djb2(key) mod N. keyOf extracts the current request's key from the
// application context.
func KeyHashChooser(n int, keyOf func(ctx dsl.HostCtx) (string, error)) func(ctx dsl.HostCtx) (int, error) {
	return func(ctx dsl.HostCtx) (int, error) {
		key, err := keyOf(ctx)
		if err != nil {
			return 0, err
		}
		return int(workload.Djb2(key)) % n, nil
	}
}

// SizeClassChooser implements the paper's feature-based sharding by object
// size (§5.2): a look-up on a custom table mapping keys to object sizes,
// quantized into the disjoint ranges 0–4 KB, 4–64 KB and >64 KB. Keys whose
// size is unknown (e.g. first write) are classified by the size of the value
// being written; reads of unknown keys fall back to the hash chooser so the
// shard count N may exceed the class count.
func SizeClassChooser(
	n int,
	classes []workload.SizeClass,
	sizeOf func(ctx dsl.HostCtx) (key string, size int, known bool, err error),
) func(ctx dsl.HostCtx) (int, error) {
	if len(classes) == 0 {
		classes = workload.PaperSizeClasses()
	}
	return func(ctx dsl.HostCtx) (int, error) {
		key, size, known, err := sizeOf(ctx)
		if err != nil {
			return 0, err
		}
		if !known {
			return int(workload.Djb2(key)) % n, nil
		}
		for i, c := range classes {
			if size <= c.MaxBytes {
				return i % n, nil
			}
		}
		return (len(classes) - 1) % n, nil
	}
}

// RoundRobinChooser cycles through shards (useful for load-balancing
// computations rather than storage, §5.2: "This architecture could be
// repurposed to load-balance computations").
func RoundRobinChooser(n int) func(ctx dsl.HostCtx) (int, error) {
	next := 0
	return func(dsl.HostCtx) (int, error) {
		if n <= 0 {
			return 0, fmt.Errorf("patterns: round robin over %d shards", n)
		}
		i := next % n
		next++
		return i, nil
	}
}
