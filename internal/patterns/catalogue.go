package patterns

import (
	"time"

	"csaw/internal/analysis"
	"csaw/internal/dsl"
)

// CatalogueEntry is one §5/§7 architecture in the built-in catalogue,
// constructed with inert host hooks so tools can analyze structure without
// behaviour. Suppressions mute analyzer findings that are deliberate
// properties of the pattern, each with its recorded reason.
type CatalogueEntry struct {
	Name         string
	Doc          string
	Build        func() *dsl.Program
	Suppressions []analysis.Suppression
	// CheckVerdict is the expected bounded-model-checker verdict for the
	// entry ("clean", "clean-bounded", "deadlock", "invariant", "liveness");
	// csawc -check-all fails when the computed verdict drifts from it.
	CheckVerdict string
	// CheckNote records why a non-"clean" verdict is expected.
	CheckNote string
}

// Catalogue returns the built-in architecture catalogue in stable order.
// cmd/csawc serves it, and the analyzer's self-application tests vet every
// entry.
func Catalogue() []CatalogueEntry {
	nopSrc := func(dsl.HostCtx) ([]byte, error) { return []byte{}, nil }
	nopSink := func(dsl.HostCtx, []byte) error { return nil }
	nopHandle := func(_ dsl.HostCtx, b []byte) ([]byte, error) { return b, nil }
	t := time.Second

	return []CatalogueEntry{
		{
			Name: "snapshot",
			Doc:  "state snapshot from an acting to an auditing component (§5, Fig. 3)",
			Build: func() *dsl.Program {
				return Snapshot(SnapshotConfig{Timeout: t, Capture: nopSrc, Apply: nopSink})
			},
			CheckVerdict: "clean",
		},
		{
			Name: "sharding",
			Doc:  "front junction routing requests to one of N backend shards (§7.1, Fig. 5)",
			Build: func() *dsl.Program {
				return Sharding(ShardingConfig{
					N: 4, Timeout: t,
					Choose:         func(dsl.HostCtx) (int, error) { return 0, nil },
					CaptureRequest: nopSrc, HandleRequest: nopHandle, DeliverResponse: nopSink,
				})
			},
			CheckVerdict: "clean",
		},
		{
			Name: "parallel-sharding",
			Doc:  "front junction engaging a subset of backends in parallel (§7.1, Fig. 6)",
			Build: func() *dsl.Program {
				return ParallelSharding(ParallelShardingConfig{
					N: 3, Timeout: t,
					ChooseSet:      func(dsl.HostCtx) ([]int, error) { return []int{0, 1, 2}, nil },
					CaptureRequest: nopSrc, HandleRequest: nopHandle,
				})
			},
			Suppressions: []analysis.Suppression{{
				Pass:   "kvlifecycle",
				Match:  `subset "tgt" is populated but never consulted`,
				Reason: "Fig. 6 ➌ fidelity: the subset mirrors the paper's tgt ⊆ Backs; the unrolled engage loop consults membership through the Engage[b̃] propositions instead",
			}, {
				Pass:   "kvlifecycle",
				Match:  `data "m" is written but never read`,
				Reason: "Fig. 6 computes but never delivers responses: each back-end retains its reply in m for host-side consumption only",
			}},
			CheckVerdict: "clean-bounded",
			CheckNote:    "the 3-backend parallel engage with host havocs saturates the default state cap; no violation in the explored prefix",
		},
		{
			Name: "caching",
			Doc:  "front junction memoizing backend responses (§7.2, Fig. 7)",
			Build: func() *dsl.Program {
				return Caching(CachingConfig{
					Timeout:        t,
					CheckCacheable: func(dsl.HostCtx) (bool, error) { return true, nil },
					LookupCache:    func(dsl.HostCtx) (bool, error) { return false, nil },
					CaptureRequest: nopSrc, DeliverResponse: nopSink,
					UpdateCache: func(dsl.HostCtx) error { return nil },
					ComputeF:    nopHandle,
				})
			},
			CheckVerdict: "clean",
		},
		{
			Name: "failover",
			Doc:  "front with N warm-standby backends and stateful failover (§7.3, Fig. 10)",
			Build: func() *dsl.Program {
				return Failover(FailoverConfig{
					N: 2, Timeout: t,
					InitialState: nopSrc, PrepareRequest: nopSrc,
					ApplyStateAtFront: nopSink, ApplyStateAtBack: nopSink,
					HandleRequest: nopHandle, DeliverResponse: nopSink, CaptureState: nopSrc,
				})
			},
			CheckVerdict: "liveness",
			CheckNote:    "the request-driven junctions (f::c, the backends' serve) fire only on client requests beyond the default environment budget; no safety violation within the bound",
		},
		{
			Name: "watched-failover",
			Doc:  "primary/standby pair under a liveness watchdog (§7.4, Fig. 12)",
			Build: func() *dsl.Program {
				return WatchedFailover(WatchedFailoverConfig{
					Timeout:        t,
					PrepareRequest: nopSrc, HandleRequest: nopHandle, DeliverResponse: nopSink,
				})
			},
			Suppressions: []analysis.Suppression{{
				Pass:   "kvlifecycle",
				Match:  `proposition "nofailover" is written remotely`,
				Reason: "Fig. 16 fidelity: the watchdog asserts nofailover at both the primary and f; only f consults it, but the declaration at o is required for the watchdog's assert to be deliverable",
			}},
			CheckVerdict: "liveness",
			CheckNote:    "the watchdog's recovery junctions are guarded on instance crashes (¬@running) and crash faults are outside the checker's transition relation",
		},
	}
}

// CatalogueEntryByName finds an entry by name.
func CatalogueEntryByName(name string) (CatalogueEntry, bool) {
	for _, e := range Catalogue() {
		if e.Name == name {
			return e, true
		}
	}
	return CatalogueEntry{}, false
}
