package patterns

import (
	"time"

	"csaw/internal/analysis"
	"csaw/internal/dsl"
)

// CatalogueEntry is one §5/§7 architecture in the built-in catalogue,
// constructed with inert host hooks so tools can analyze structure without
// behaviour. Suppressions mute analyzer findings that are deliberate
// properties of the pattern, each with its recorded reason.
type CatalogueEntry struct {
	Name         string
	Doc          string
	Build        func() *dsl.Program
	Suppressions []analysis.Suppression
	// CheckVerdict is the expected bounded-model-checker verdict for the
	// entry ("clean", "clean-bounded", "deadlock", "invariant", "liveness");
	// csawc -check-all fails when the computed verdict drifts from it.
	CheckVerdict string
	// CheckNote records why a non-"clean" verdict is expected.
	CheckNote string
	// CostPlacement is the reference deployment the cost suite prices the
	// entry under: instance→location, mirroring how the pattern is meant to
	// be split across machines. CostPins marks the instances that placement
	// fixes (the optimizer may relocate the rest).
	CostPlacement map[string]string
	CostPins      map[string]bool
	// CostSuppressions mute cost-pass findings that are deliberate
	// properties of the pattern. They are separate from Suppressions
	// because the two suites run under different pass sets and a
	// suppression naming a pass outside its run is itself flagged.
	CostSuppressions []analysis.Suppression
	// CostVerdict is the expected cost-suite verdict ("clean", "findings",
	// "error"); csawc -cost-all fails when the computed verdict drifts.
	CostVerdict string
	// CostNote records why a non-"clean" cost verdict is expected.
	CostNote string
}

// Catalogue returns the built-in architecture catalogue in stable order.
// cmd/csawc serves it, and the analyzer's self-application tests vet every
// entry.
func Catalogue() []CatalogueEntry {
	nopSrc := func(dsl.HostCtx) ([]byte, error) { return []byte{}, nil }
	nopSink := func(dsl.HostCtx, []byte) error { return nil }
	nopHandle := func(_ dsl.HostCtx, b []byte) ([]byte, error) { return b, nil }
	t := time.Second

	return []CatalogueEntry{
		{
			Name: "snapshot",
			Doc:  "state snapshot from an acting to an auditing component (§5, Fig. 3)",
			Build: func() *dsl.Program {
				return Snapshot(SnapshotConfig{Timeout: t, Capture: nopSrc, Apply: nopSink})
			},
			CheckVerdict: "clean",
			// The snapshot exists to cross a machine boundary: Act is the
			// application host, Aud the audit host, both fixed.
			CostPlacement: map[string]string{ActInstance: "app", AudInstance: "audit"},
			CostPins:      map[string]bool{ActInstance: true, AudInstance: true},
			CostVerdict:   "clean",
		},
		{
			Name: "sharding",
			Doc:  "front junction routing requests to one of N backend shards (§7.1, Fig. 5)",
			Build: func() *dsl.Program {
				return Sharding(ShardingConfig{
					N: 4, Timeout: t,
					Choose:         func(dsl.HostCtx) (int, error) { return 0, nil },
					CaptureRequest: nopSrc, HandleRequest: nopHandle, DeliverResponse: nopSink,
				})
			},
			CheckVerdict: "clean",
			// The router and the first two shards are fixed (edge ingress and
			// provisioned core capacity); Bck3/Bck4 are free, and the
			// optimizer should pull them next to the router.
			CostPlacement: map[string]string{
				FrontInstance: "edge",
				"Bck1":        "core", "Bck2": "core", "Bck3": "core", "Bck4": "core",
			},
			CostPins:    map[string]bool{FrontInstance: true, "Bck1": true, "Bck2": true},
			CostVerdict: "clean",
		},
		{
			Name: "parallel-sharding",
			Doc:  "front junction engaging a subset of backends in parallel (§7.1, Fig. 6)",
			Build: func() *dsl.Program {
				return ParallelSharding(ParallelShardingConfig{
					N: 3, Timeout: t,
					ChooseSet:      func(dsl.HostCtx) ([]int, error) { return []int{0, 1, 2}, nil },
					CaptureRequest: nopSrc, HandleRequest: nopHandle,
				})
			},
			Suppressions: []analysis.Suppression{{
				Pass:   "kvlifecycle",
				Match:  `subset "tgt" is populated but never consulted`,
				Reason: "Fig. 6 ➌ fidelity: the subset mirrors the paper's tgt ⊆ Backs; the unrolled engage loop consults membership through the Engage[b̃] propositions instead",
			}, {
				Pass:   "kvlifecycle",
				Match:  `data "m" is written but never read`,
				Reason: "Fig. 6 computes but never delivers responses: each back-end retains its reply in m for host-side consumption only",
			}},
			CheckVerdict: "clean-bounded",
			CheckNote:    "the 3-backend parallel engage with host havocs saturates the default state cap; no violation in the explored prefix",
			CostPlacement: map[string]string{
				FrontInstance: "edge",
				"Bck1":        "core", "Bck2": "core", "Bck3": "core",
			},
			CostPins: map[string]bool{
				FrontInstance: true, "Bck1": true, "Bck2": true, "Bck3": true,
			},
			CostSuppressions: []analysis.Suppression{{
				Pass:   "costfanout",
				Match:  "Fnt::junction/body[3]",
				Reason: "Fig. 6 fans the request out to the chosen backend *set* by definition; the arms target distinct shards, so per-destination coalescing is inherently unavailable",
			}},
			CostVerdict: "clean",
		},
		{
			Name: "caching",
			Doc:  "front junction memoizing backend responses (§7.2, Fig. 7)",
			Build: func() *dsl.Program {
				return Caching(CachingConfig{
					Timeout:        t,
					CheckCacheable: func(dsl.HostCtx) (bool, error) { return true, nil },
					LookupCache:    func(dsl.HostCtx) (bool, error) { return false, nil },
					CaptureRequest: nopSrc, DeliverResponse: nopSink,
					UpdateCache: func(dsl.HostCtx) error { return nil },
					ComputeF:    nopHandle,
				})
			},
			CheckVerdict: "clean",
			// The cache fronts requests at the edge precisely so that hits
			// avoid the trip to the core-side function.
			CostPlacement: map[string]string{CacheInstance: "edge", FunInstance: "core"},
			CostPins:      map[string]bool{CacheInstance: true, FunInstance: true},
			CostVerdict:   "clean",
		},
		{
			Name: "failover",
			Doc:  "front with N warm-standby backends and stateful failover (§7.3, Fig. 10)",
			Build: func() *dsl.Program {
				return Failover(FailoverConfig{
					N: 2, Timeout: t,
					InitialState: nopSrc, PrepareRequest: nopSrc,
					ApplyStateAtFront: nopSink, ApplyStateAtBack: nopSink,
					HandleRequest: nopHandle, DeliverResponse: nopSink, CaptureState: nopSrc,
				})
			},
			CheckVerdict: "liveness",
			CheckNote:    "the request-driven junctions (f::c, the backends' serve) fire only on client requests beyond the default environment budget; no safety violation within the bound",
			// Warm-standby failover keeps the front and every replica on one
			// site: the replicas exist for crash tolerance, not distribution.
			CostPlacement: map[string]string{FrontEnd: "site", "b1": "site", "b2": "site"},
			CostPins:      map[string]bool{FrontEnd: true, "b1": true, "b2": true},
			CostSuppressions: []analysis.Suppression{{
				Pass:   "costpoll",
				Match:  "::startup/guard",
				Reason: "the backend's startup guard reads its own instance's serve table (me::instance::serve), never a remote one; the poll is paced by the junction backoff",
			}, {
				Pass:   "costpoll",
				Match:  "f::c/body[7]",
				Reason: "the warm-all engage probes each backend's Active/@running state before committing to it; the probes are same-site (placement pins every instance together) and bounded by the engage timeout",
			}, {
				Pass:   "costfanout",
				Match:  "f::c/body[7]",
				Reason: "engaging every warm replica in parallel is the §7.3 design: the arms must target distinct backends",
			}, {
				Pass:   "costpingpong",
				Match:  "wait-separated rounds",
				Reason: "Fig. 10's stateful hand-off acknowledges the state transfer and the request separately per backend; the extra round is the protocol, and both ends are pinned to one site",
			}},
			CostVerdict: "clean",
		},
		{
			Name: "watched-failover",
			Doc:  "primary/standby pair under a liveness watchdog (§7.4, Fig. 12)",
			Build: func() *dsl.Program {
				return WatchedFailover(WatchedFailoverConfig{
					Timeout:        t,
					PrepareRequest: nopSrc, HandleRequest: nopHandle, DeliverResponse: nopSink,
				})
			},
			Suppressions: []analysis.Suppression{{
				Pass:   "kvlifecycle",
				Match:  `proposition "nofailover" is written remotely`,
				Reason: "Fig. 16 fidelity: the watchdog asserts nofailover at both the primary and f; only f consults it, but the declaration at o is required for the watchdog's assert to be deliverable",
			}},
			CheckVerdict: "liveness",
			CheckNote:    "the watchdog's recovery junctions are guarded on instance crashes (¬@running) and crash faults are outside the checker's transition relation",
			// The arbiter must observe the others' liveness in-process, so
			// the whole quartet is pinned to one site.
			CostPlacement: map[string]string{
				WatchedFront: "site", Watchdog: "site",
				PrimaryBackend: "site", StandbyBackend: "site",
			},
			CostPins: map[string]bool{
				WatchedFront: true, Watchdog: true,
				PrimaryBackend: true, StandbyBackend: true,
			},
			CostVerdict: "findings",
			CostNote:    "the watchdog junctions are poll-bound on @running by design — crash detection cannot be event-driven (costpoll warnings) — and the backends' Reply mutual-exclusion probes poll the peer's table (§7.4); the findings are the pattern's documented price",
		},
	}
}

// CatalogueEntryByName finds an entry by name.
func CatalogueEntryByName(name string) (CatalogueEntry, bool) {
	for _, e := range Catalogue() {
		if e.Name == name {
			return e, true
		}
	}
	return CatalogueEntry{}, false
}
